"""Tests for the gradient-descent task scheduler (§6, Appendix A)."""

import math

import numpy as np
import pytest

from repro.hardware import MeasurePipeline, ProgramMeasurer, arm_cpu, intel_cpu
from repro.scheduler import GeomeanSpeedup, TaskScheduler, WeightedSumLatency
from repro.search.policy import SearchPolicy
from repro.task import SearchTask

from ..conftest import make_matmul_dag, make_matmul_relu_dag, make_norm_dag


class FakePolicy(SearchPolicy):
    """A deterministic policy whose best latency improves as 1/t.

    Task i starts at ``initial`` seconds and converges towards
    ``initial * floor_fraction`` — a controllable stand-in that lets the
    scheduler's allocation behaviour be tested without running real search.
    """

    def __init__(self, task, initial: float, floor_fraction: float = 0.1, seed: int = 0):
        super().__init__(task, seed=seed)
        self.initial = initial
        self.floor_fraction = floor_fraction
        self.rounds = 0

    def continue_search_one_round(self, num_measures, measurer):
        self.rounds += 1
        floor = self.initial * self.floor_fraction
        cost = floor + (self.initial - floor) / self.rounds
        self.best_cost = min(self.best_cost, cost)
        from repro.hardware import MeasureInput, MeasureResult

        inputs = [MeasureInput(self.task, self.task.compute_dag.init_state()) for _ in range(num_measures)]
        results = [MeasureResult(costs=[cost]) for _ in range(num_measures)]
        self._record_results(inputs, results)
        return inputs, results


def _make_tasks():
    return [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="small"),
        SearchTask(make_matmul_relu_dag(128, 128, 128), intel_cpu(), desc="medium"),
        SearchTask(make_matmul_dag(256, 256, 256), intel_cpu(), desc="large"),
    ]


def _fake_factory(initials):
    def factory(task, cost_model, seed):
        index = len(factory.created)
        policy = FakePolicy(task, initials[index], seed=seed)
        factory.created.append(policy)
        return policy

    factory.created = []
    return factory


def test_round_robin_allocates_evenly():
    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(tasks, strategy="round_robin", policy_factory=factory)
    scheduler.tune(num_measure_trials=60, num_measures_per_round=10)
    assert scheduler.allocations == [2, 2, 2]


def test_warm_up_visits_every_task_once():
    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.2, 0.3])
    scheduler = TaskScheduler(tasks, policy_factory=factory, eps_greedy=0.0)
    scheduler.tune(num_measure_trials=30, num_measures_per_round=10)
    assert all(a >= 1 for a in scheduler.allocations)


def test_gradient_scheduler_prioritizes_heavy_task():
    """A task with 100x the latency should receive most of the allocations
    (the paper's 'prioritize a subgraph that has a high initial latency')."""
    tasks = _make_tasks()
    factory = _fake_factory([0.001, 0.001, 0.1])
    scheduler = TaskScheduler(tasks, policy_factory=factory, eps_greedy=0.0, seed=0)
    scheduler.tune(num_measure_trials=200, num_measures_per_round=10)
    assert scheduler.allocations[2] > scheduler.allocations[0]
    assert scheduler.allocations[2] > scheduler.allocations[1]
    assert scheduler.allocations[2] >= sum(scheduler.allocations) * 0.5


def test_task_weights_affect_allocation():
    tasks = _make_tasks()
    factory = _fake_factory([0.01, 0.01, 0.01])
    scheduler = TaskScheduler(
        tasks, task_weights=[50.0, 1.0, 1.0], policy_factory=factory, eps_greedy=0.0
    )
    scheduler.tune(num_measure_trials=200, num_measures_per_round=10)
    assert scheduler.allocations[0] >= max(scheduler.allocations[1], scheduler.allocations[2])


def test_objective_value_and_latency_reporting():
    tasks = _make_tasks()
    factory = _fake_factory([0.02, 0.03, 0.04])
    scheduler = TaskScheduler(tasks, policy_factory=factory)
    scheduler.tune(num_measure_trials=60, num_measures_per_round=10)
    assert math.isfinite(scheduler.objective_value())
    assert scheduler.dnn_latency(0) > 0
    assert len(scheduler.records) == 6
    assert scheduler.records[-1].total_trials == 60


def test_records_track_selected_tasks():
    tasks = _make_tasks()
    factory = _fake_factory([0.02, 0.03, 0.04])
    scheduler = TaskScheduler(tasks, policy_factory=factory)
    scheduler.tune(num_measure_trials=50, num_measures_per_round=10)
    selected = {r.selected_task for r in scheduler.records}
    assert selected <= {0, 1, 2}


def test_similar_tasks_grouping():
    tasks = _make_tasks()
    scheduler = TaskScheduler(tasks, policy_factory=_fake_factory([0.1] * 3))
    # the two matmul+relu tasks share a signature; the plain matmul does not
    assert 1 in scheduler.similar_tasks(0)
    assert 2 not in scheduler.similar_tasks(0)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        TaskScheduler(_make_tasks(), strategy="random")


def test_empty_task_list_rejected():
    with pytest.raises(ValueError):
        TaskScheduler([])


def test_heterogeneous_tasks_measured_on_their_own_hardware():
    """Regression: the scheduler used to default every task's measurer to
    tasks[0].hardware_params, measuring ARM tasks on the Intel model."""
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="intel-a"),
        SearchTask(make_matmul_relu_dag(64, 64, 64), arm_cpu(), desc="arm"),
        SearchTask(make_matmul_dag(64, 64, 64), intel_cpu(), desc="intel-b"),
    ]
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(tasks, strategy="round_robin", policy_factory=factory)
    scheduler.tune(num_measure_trials=30, num_measures_per_round=10)
    assert [m.hardware.name for m in scheduler.measurers] == [
        "intel-20c", "arm-4c", "intel-20c",
    ]
    # Tasks sharing a hardware description share one pipeline.
    assert scheduler.measurers[0] is scheduler.measurers[2]
    assert scheduler.measurers[0] is not scheduler.measurers[1]


def test_supplied_measurer_validated_against_task_hardware():
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="intel"),
        SearchTask(make_matmul_relu_dag(64, 64, 64), arm_cpu(), desc="arm"),
    ]
    factory = _fake_factory([0.1, 0.1])
    scheduler = TaskScheduler(tasks, policy_factory=factory)
    with pytest.raises(ValueError, match="different hardware"):
        scheduler.tune(
            num_measure_trials=10,
            measurer=MeasurePipeline(intel_cpu()),
        )


def test_same_name_different_params_get_distinct_pipelines():
    """Hardware dedup keys on the full params, not the name: two targets
    named alike but differing in core count must not share a machine model."""
    import dataclasses

    hw_a = intel_cpu()
    hw_b = dataclasses.replace(intel_cpu(), num_cores=4)
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), hw_a, desc="20c"),
        SearchTask(make_matmul_relu_dag(64, 64, 64), hw_b, desc="4c"),
    ]
    factory = _fake_factory([0.1, 0.1])
    scheduler = TaskScheduler(tasks, strategy="round_robin", policy_factory=factory)
    scheduler.tune(num_measure_trials=20, num_measures_per_round=10)
    assert scheduler.measurers[0] is not scheduler.measurers[1]
    assert scheduler.measurers[0].hardware.num_cores == 20
    assert scheduler.measurers[1].hardware.num_cores == 4


def test_measurer_factory_builds_per_hardware_pipelines():
    """Tuner threads options knobs through tune(measurer_factory=...); the
    factory is called once per distinct hardware target."""
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="intel-a"),
        SearchTask(make_matmul_relu_dag(64, 64, 64), arm_cpu(), desc="arm"),
        SearchTask(make_matmul_dag(64, 64, 64), intel_cpu(), desc="intel-b"),
    ]
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(tasks, strategy="round_robin", policy_factory=factory)
    built = []

    def measurer_factory(hw):
        pipeline = MeasurePipeline(hw, n_parallel=4, seed=0)
        built.append(pipeline)
        return pipeline

    scheduler.tune(
        num_measure_trials=30, num_measures_per_round=10, measurer_factory=measurer_factory
    )
    assert len(built) == 2  # one per distinct hardware
    assert all(m.builder.n_parallel == 4 for m in scheduler.measurers)


def test_supplied_measurer_accepted_when_hardware_matches():
    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(tasks, strategy="round_robin", policy_factory=factory)
    measurer = ProgramMeasurer(intel_cpu(), seed=0)
    scheduler.tune(num_measure_trials=30, num_measures_per_round=10, measurer=measurer)
    assert all(m is measurer for m in scheduler.measurers)


def test_multi_dnn_objective_with_geomean():
    tasks = _make_tasks()
    task_to_dnn = [0, 0, 1]
    weights = [1.0, 1.0, 1.0]
    objective = GeomeanSpeedup(weights, task_to_dnn, reference_latencies=[1.0, 1.0])
    factory = _fake_factory([0.02, 0.03, 0.04])
    scheduler = TaskScheduler(
        tasks, task_weights=weights, task_to_dnn=task_to_dnn, objective=objective, policy_factory=factory
    )
    scheduler.tune(num_measure_trials=60, num_measures_per_round=10)
    assert scheduler.objective_value() < 0  # a (negated) speedup


# ---------------------------------------------------------------------------
# Placeholder costs for unmeasured tasks (regression: objective_value used to
# substitute 1.0 while dnn_latency substituted 0.0)
# ---------------------------------------------------------------------------


class EmptyPolicy(SearchPolicy):
    """A policy whose search space is exhausted: it never produces candidates."""

    def continue_search_one_round(self, num_measures, measurer):
        return [], []


def test_unmeasured_tasks_use_one_consistent_placeholder():
    """Before any measurement, objective_value and dnn_latency must agree on
    the placeholder: a pessimistic UNMEASURED_LATENCY_SEC per task, never a
    0.0 that claims an untuned subgraph is free."""
    from repro.scheduler.task_scheduler import UNMEASURED_LATENCY_SEC

    tasks = _make_tasks()
    scheduler = TaskScheduler(tasks, policy_factory=_fake_factory([0.1] * 3))
    expected = len(tasks) * UNMEASURED_LATENCY_SEC
    assert scheduler.objective_value() == pytest.approx(expected)
    assert scheduler.dnn_latency(0) == pytest.approx(expected)


def test_pre_warmup_tuning_curve_is_finite_and_decreasing():
    """During warm-up some tasks are still unmeasured: every curve point must
    be finite, bounded by the all-placeholder value, and improve as real
    (sub-placeholder) measurements replace placeholders."""
    from repro.scheduler.task_scheduler import UNMEASURED_LATENCY_SEC

    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.2, 0.3])
    scheduler = TaskScheduler(tasks, policy_factory=factory, eps_greedy=0.0, seed=0)
    # Budget for two of three warm-up rounds: one task stays unmeasured.
    scheduler.tune(num_measure_trials=20, num_measures_per_round=10)
    ceiling = len(tasks) * UNMEASURED_LATENCY_SEC
    values = [r.objective_value for r in scheduler.records]
    assert len(values) == 2
    assert all(math.isfinite(v) for v in values)
    assert all(v < ceiling for v in values)
    assert values[1] < values[0]
    # The partially tuned network reports the placeholder for the unmeasured
    # task instead of pretending it costs nothing.
    measured = [c for c in scheduler.best_costs if math.isfinite(c)]
    assert len(measured) == 2
    assert scheduler.dnn_latency(0) == pytest.approx(
        sum(measured) + UNMEASURED_LATENCY_SEC
    )


# ---------------------------------------------------------------------------
# Empty rounds exhaust a task (regression: a dead task used to be selectable
# forever, burning the budget one phantom trial at a time)
# ---------------------------------------------------------------------------


def test_empty_rounds_exhaust_the_task():
    tasks = _make_tasks()[:2]

    def factory(task, cost_model, seed):
        if not factory.created:
            policy = EmptyPolicy(task, seed=seed)
        else:
            policy = FakePolicy(task, 0.1, seed=seed)
        factory.created.append(policy)
        return policy

    factory.created = []
    scheduler = TaskScheduler(tasks, policy_factory=factory, eps_greedy=0.0, seed=0)
    best = scheduler.tune(num_measure_trials=40, num_measures_per_round=10)
    # The dead task was retired after max_empty_rounds phantom trials...
    assert scheduler.exhausted[0]
    assert scheduler.empty_rounds[0] == scheduler.max_empty_rounds
    # ...with its history unpolluted (no stale points from empty rounds)...
    assert scheduler.latency_history[0] == []
    assert not math.isfinite(best[0])
    # ...and the remaining budget went to the live task instead of phantom
    # trials: total budget minus one phantom per empty round.
    live_trials = factory.created[1].num_trials
    assert live_trials == 40 - scheduler.max_empty_rounds
    assert scheduler.total_trials == 40


def test_all_tasks_empty_ends_the_session():
    tasks = _make_tasks()[:2]

    def factory(task, cost_model, seed):
        return EmptyPolicy(task, seed=seed)

    scheduler = TaskScheduler(tasks, policy_factory=factory, eps_greedy=0.0, seed=0)
    scheduler.tune(num_measure_trials=100, num_measures_per_round=10)
    assert all(scheduler.exhausted)
    # Bounded waste: at most max_empty_rounds phantom trials per task.
    assert scheduler.total_trials <= len(tasks) * scheduler.max_empty_rounds


def test_max_empty_rounds_validated():
    with pytest.raises(ValueError, match="max_empty_rounds"):
        TaskScheduler(_make_tasks(), max_empty_rounds=0)


@pytest.mark.slow
def test_real_policies_integration_small():
    """End-to-end with real SketchPolicies on tiny budgets."""
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="mm64"),
        SearchTask(make_norm_dag(4, 64, 64), intel_cpu(), desc="norm"),
    ]
    scheduler = TaskScheduler(tasks, seed=0)
    best = scheduler.tune(num_measure_trials=24, num_measures_per_round=6)
    assert len(best) == 2
    assert all(math.isfinite(c) for c in best)
    states = scheduler.best_states()
    assert all(s is not None for s in states)


# ---------------------------------------------------------------------------
# Per-task trial limits (the TuningService's per-request max_trials)
# ---------------------------------------------------------------------------


def test_trial_limits_cap_individual_tasks():
    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(
        tasks,
        strategy="round_robin",
        policy_factory=factory,
        trial_limits=[10, None, None],
    )
    scheduler.tune(num_measure_trials=60, num_measures_per_round=10)
    assert scheduler.task_trials[0] == 10
    # the capped task's unspent budget flows to the unlimited ones
    assert sum(scheduler.task_trials) == 60
    assert scheduler.task_trials[1] + scheduler.task_trials[2] == 50


def test_trial_limits_below_round_size_are_respected():
    tasks = _make_tasks()
    factory = _fake_factory([0.1, 0.1, 0.1])
    scheduler = TaskScheduler(
        tasks,
        strategy="round_robin",
        policy_factory=factory,
        trial_limits=[4, 4, 4],
    )
    # limits cap the session below the requested budget
    scheduler.tune(num_measure_trials=60, num_measures_per_round=10)
    assert scheduler.task_trials == [4, 4, 4]


def test_trial_limits_validated():
    tasks = _make_tasks()
    with pytest.raises(ValueError, match="trial_limits"):
        TaskScheduler(tasks, trial_limits=[1, 2])  # wrong length
    with pytest.raises(ValueError, match="trial_limits"):
        TaskScheduler(tasks, trial_limits=[1, 0, 1])  # non-positive
