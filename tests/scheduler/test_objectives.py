"""Tests for the Table-2 objective functions."""

import math

import pytest

from repro.scheduler import (
    EarlyStoppingLatency,
    GeomeanSpeedup,
    LatencyRequirement,
    WeightedSumLatency,
)


# Two DNNs: DNN 0 has tasks 0,1 (weights 2,1); DNN 1 has task 2 (weight 3).
WEIGHTS = [2.0, 1.0, 3.0]
TASK_TO_DNN = [0, 0, 1]
LATENCIES = [0.010, 0.020, 0.005]


def test_f1_weighted_sum():
    obj = WeightedSumLatency(WEIGHTS, TASK_TO_DNN)
    # DNN0 = 2*0.01 + 1*0.02 = 0.04 ; DNN1 = 3*0.005 = 0.015
    assert obj.dnn_latency(LATENCIES, 0) == pytest.approx(0.04)
    assert obj.dnn_latency(LATENCIES, 1) == pytest.approx(0.015)
    assert obj.value(LATENCIES) == pytest.approx(0.055)


def test_f1_derivative_is_task_weight():
    obj = WeightedSumLatency(WEIGHTS, TASK_TO_DNN)
    assert obj.derivative(LATENCIES, 0) == 2.0
    assert obj.derivative(LATENCIES, 2) == 3.0


def test_f1_ignores_infinite_latencies():
    obj = WeightedSumLatency(WEIGHTS, TASK_TO_DNN)
    latencies = [float("inf"), 0.02, 0.005]
    assert math.isfinite(obj.value(latencies))


def test_f2_latency_requirement_met_means_zero_gradient():
    obj = LatencyRequirement(WEIGHTS, TASK_TO_DNN, requirements=[0.100, 0.001])
    # DNN0 is already below its requirement of 0.1 -> no gradient for its tasks
    assert obj.derivative(LATENCIES, 0) == 0.0
    assert obj.derivative(LATENCIES, 1) == 0.0
    # DNN1 (0.015 > 0.001) still matters
    assert obj.derivative(LATENCIES, 2) == 3.0


def test_f2_value_uses_requirement_floor():
    obj = LatencyRequirement(WEIGHTS, TASK_TO_DNN, requirements=[0.100, 0.001])
    assert obj.value(LATENCIES) == pytest.approx(0.100 + 0.015)


def test_f2_requires_one_requirement_per_dnn():
    with pytest.raises(ValueError):
        LatencyRequirement(WEIGHTS, TASK_TO_DNN, requirements=[0.1])


def test_f3_geomean_speedup_value():
    obj = GeomeanSpeedup(WEIGHTS, TASK_TO_DNN, reference_latencies=[0.08, 0.03])
    # speedups: 0.08/0.04 = 2 ; 0.03/0.015 = 2 -> geomean 2 -> value -2
    assert obj.value(LATENCIES) == pytest.approx(-2.0)


def test_f3_derivative_sign_and_magnitude():
    obj = GeomeanSpeedup(WEIGHTS, TASK_TO_DNN, reference_latencies=[0.08, 0.03])
    # improving (decreasing) any latency must decrease the objective, so the
    # partial derivative with respect to g_i is positive.
    for i in range(3):
        assert obj.derivative(LATENCIES, i) > 0


def test_f3_requires_reference_per_dnn():
    with pytest.raises(ValueError):
        GeomeanSpeedup(WEIGHTS, TASK_TO_DNN, reference_latencies=[0.08])


def test_f4_early_stopping_freezes_stale_task():
    obj = EarlyStoppingLatency(WEIGHTS, TASK_TO_DNN, patience=2)
    # task 0 improves, then stalls
    obj.observe(0, 0.02)
    obj.observe(0, 0.02)
    obj.observe(0, 0.02)
    assert obj.early_stopped(0)
    assert obj.derivative(LATENCIES, 0) == 0.0
    # task 1 never observed: not early stopped
    assert not obj.early_stopped(1)
    assert obj.derivative(LATENCIES, 1) == 1.0


def test_f4_improvement_resets_patience():
    obj = EarlyStoppingLatency(WEIGHTS, TASK_TO_DNN, patience=2)
    obj.observe(0, 0.02)
    obj.observe(0, 0.02)
    obj.observe(0, 0.01)  # improvement resets the counter
    assert not obj.early_stopped(0)


def test_f4_value_is_finite():
    obj = EarlyStoppingLatency(WEIGHTS, TASK_TO_DNN)
    assert math.isfinite(obj.value(LATENCIES))


def test_single_dnn_default_mapping():
    obj = WeightedSumLatency([1.0, 1.0])
    assert obj.num_dnns == 1
    assert obj.value([0.1, 0.2]) == pytest.approx(0.3)
