"""Tests for the self-healing device fleet (learned fault profiles, circuit
breakers, elastic membership, affinity dispatch) and its satellites.

Covers the fleet acceptance surface: online fault-rate estimation converging
on injected (undeclared) device behaviour, breaker trip / canary re-admission
/ permanent ejection under seeded fault storms, a board degrading mid-session
without hurting the session's best cost, elastic add/remove with zero lost or
double-counted results under an async ``as_completed`` consumer, sticky
workload-affinity dispatch with load-aware spill, the timeout-retry policy
(``TuningOptions(retry_timeouts=True)``) and its record round-trip, and the
per-attempt busy-seconds attribution that keeps ``device_stats()`` honest
when retries land on a different device.
"""

import io
import json

import pytest

from repro import TuningOptions
from repro.callbacks import ProgressLogger
from repro.cost_model import LearnedCostModel
from repro.hardware import (
    CircuitBreakerConfig,
    DeviceFleet,
    DeviceProfile,
    DeviceState,
    EstimatedProfile,
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    RpcRunner,
    intel_cpu,
)
from repro.records import TuningRecord, load_records, save_records
from repro.scheduler import TaskScheduler
from repro.search import generate_sketches, sample_initial_population
from repro.search.baselines import random_search_policy
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag, make_norm_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="matmul+relu")


@pytest.fixture
def states(task, rng):
    sketches = generate_sketches(task)
    return sample_initial_population(task, sketches, 8, rng)


@pytest.fixture
def inputs(task, states):
    return [MeasureInput(task, s) for s in states]


def _many_inputs(task, rng, count):
    sketches = generate_sketches(task)
    states = sample_initial_population(task, sketches, count, rng)
    return [MeasureInput(task, s) for s in states]


# ---------------------------------------------------------------------------
# Config surfaces
# ---------------------------------------------------------------------------


def test_circuit_breaker_config_validation_and_coercion():
    with pytest.raises(ValueError, match="fault_rate_threshold"):
        CircuitBreakerConfig(fault_rate_threshold=0.0)
    with pytest.raises(ValueError, match="n_probe"):
        CircuitBreakerConfig(n_probe=0)
    assert CircuitBreakerConfig.coerce(None) is None
    assert CircuitBreakerConfig.coerce(False) is None
    assert CircuitBreakerConfig.coerce(True) == CircuitBreakerConfig()
    assert CircuitBreakerConfig.coerce({"min_samples": 3}).min_samples == 3
    cfg = CircuitBreakerConfig(max_trips=1)
    assert CircuitBreakerConfig.coerce(cfg) is cfg
    with pytest.raises(TypeError, match="circuit_breaker"):
        CircuitBreakerConfig.coerce("on")


def test_estimated_profile_warm_starts_from_declared():
    profile = DeviceProfile(
        "d", run_error_prob=0.2, run_timeout_prob=0.1, slowdown=2.0, queue_latency_sec=0.5
    )
    est = EstimatedProfile.from_declared(profile)
    assert est.fault_rate == pytest.approx(0.2)
    assert est.timeout_rate == pytest.approx(0.1)
    assert est.error_rate == pytest.approx(0.3)
    assert est.slowdown == pytest.approx(2.0)
    assert est.queue_latency_sec == pytest.approx(0.5)
    assert est.samples == 0


def test_fleet_dispatch_validation():
    with pytest.raises(ValueError, match="dispatch"):
        RpcRunner(intel_cpu(), dispatch="random")
    with pytest.raises(ValueError, match="dispatch"):
        TuningOptions(dispatch="random")


# ---------------------------------------------------------------------------
# Online fault-profile estimation
# ---------------------------------------------------------------------------


def test_estimated_fault_rate_converges_on_undeclared_faults(task, rng):
    """The acceptance gate's convergence half: a board *declared* clean but
    actually faulting 50% of the time is estimated within 20% of the truth
    after 100 trials — the estimator learns what the operator never said."""
    runner = RpcRunner(intel_cpu(), devices=["solo"], seed=0)
    runner.inject_profile("solo", run_error_prob=0.5)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(_many_inputs(task, rng, 100))
    stats = runner.device_stats()["solo"]
    assert stats["samples"] == 100
    assert stats["est_fault_rate"] == pytest.approx(0.5, rel=0.2)
    # The declared profile is untouched — only the estimate moved.
    assert runner.devices[0].run_error_prob == 0.0


def test_estimator_tracks_slowdown_and_queue_latency(task, rng):
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("s", slowdown=3.0, queue_latency_sec=0.25)],
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(_many_inputs(task, rng, 12))
    stats = runner.device_stats()["s"]
    assert stats["est_slowdown"] == pytest.approx(3.0, rel=0.15)
    assert stats["est_queue_latency_sec"] == pytest.approx(0.25, rel=0.15)


# ---------------------------------------------------------------------------
# Circuit breaker: trip, probe, re-admit, eject
# ---------------------------------------------------------------------------


def test_breaker_quarantines_a_faulting_board(task, rng):
    """A board that starts failing trips the breaker after ``min_samples``
    and stops receiving regular work; the healthy neighbour absorbs it."""
    runner = RpcRunner(
        intel_cpu(),
        devices=["good", "bad"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(min_samples=4, probe_interval=50),
    )
    runner.inject_profile("bad", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    results = pipeline.measure(_many_inputs(task, rng, 24))
    stats = runner.device_stats()
    assert stats["bad"]["state"] == DeviceState.QUARANTINED
    assert stats["bad"]["trips"] == 1
    # Quarantine bounds the damage: the bad board served about min_samples
    # regular runs (plus retries that raced the trip), far below its
    # round-robin half share.
    assert stats["bad"]["runs"] < 12
    assert all(r.valid for r in results)  # retries recovered on "good"


def test_breaker_readmits_after_successful_canaries(task, rng):
    """A quarantined board that recovers is re-admitted after ``n_probe``
    consecutive canary successes, with its fault evidence forgiven."""
    runner = RpcRunner(
        intel_cpu(),
        devices=["good", "flaky"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(min_samples=4, n_probe=2, probe_interval=3),
    )
    runner.inject_profile("flaky", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    pipeline.measure(_many_inputs(task, rng, 16))
    assert runner.device_stats()["flaky"]["state"] == DeviceState.QUARANTINED
    # The storm passes: the board behaves again, canaries succeed.
    runner.inject_profile("flaky", run_error_prob=0.0)
    pipeline.measure(_many_inputs(task, rng, 24))
    stats = runner.device_stats()["flaky"]
    assert stats["state"] == DeviceState.HEALTHY
    assert stats["canary_runs"] >= 2
    assert stats["est_fault_rate"] < 0.25  # evidence forgiven, re-earned clean


def test_breaker_ejects_a_permanently_dead_board(task, rng):
    """Canaries that keep failing prove the board dead: it is ejected and
    the pool keeps measuring on the survivors (work is never lost)."""
    runner = RpcRunner(
        intel_cpu(),
        devices=["good", "dead"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(
            min_samples=4, probe_interval=2, max_probe_failures=3
        ),
    )
    runner.inject_profile("dead", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    results = pipeline.measure(_many_inputs(task, rng, 40))
    stats = runner.device_stats()
    assert stats["dead"]["state"] == DeviceState.EJECTED
    assert all(r.valid for r in results)
    # After ejection every regular dispatch goes to the survivor.
    assert stats["good"]["runs"] > stats["dead"]["runs"]


def test_all_quarantined_pool_still_probes_forward(task, inputs):
    """Quarantining the only device must not deadlock dispatch: with no
    healthy member left, work is forced through as canary probes (and here
    the board recovers, so the session completes)."""
    runner = RpcRunner(
        intel_cpu(),
        devices=["only"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(
            min_samples=2, n_probe=2, probe_interval=2, max_probe_failures=20
        ),
    )
    runner.inject_profile("only", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=1)
    pipeline.measure(inputs[:4])
    assert runner.device_stats()["only"]["state"] == DeviceState.QUARANTINED
    runner.inject_profile("only", run_error_prob=0.0)
    results = pipeline.measure(inputs[4:])
    assert all(r.valid for r in results)
    assert runner.device_stats()["only"]["state"] == DeviceState.HEALTHY


def test_fully_dead_pool_raises_actionable_error(task, inputs):
    runner = RpcRunner(
        intel_cpu(),
        devices=["only"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(
            min_samples=2, probe_interval=1, max_probe_failures=2
        ),
    )
    runner.inject_profile("only", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    with pytest.raises(RuntimeError, match="no dispatchable devices"):
        pipeline.measure(inputs)


def test_breaker_off_by_default_never_transitions(task, rng):
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    runner.inject_profile("b", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    pipeline.measure(_many_inputs(task, rng, 16))
    stats = runner.device_stats()
    assert stats["b"]["state"] == DeviceState.HEALTHY
    assert stats["b"]["trips"] == 0
    assert stats["b"]["runs"] >= 8  # still receives its round-robin share


def test_fault_storm_best_cost_matches_healthy_pool(task, rng):
    """The headline scenario: one board degrades mid-session, the breaker
    trips, and the session's best cost still matches a healthy-pool run —
    robustness costs retries, not result quality."""
    inputs = _many_inputs(task, rng, 48)
    healthy = MeasurePipeline(
        intel_cpu(), runner=RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    )
    healthy.measure(inputs)

    stormy_runner = RpcRunner(
        intel_cpu(),
        devices=["a", "b"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(min_samples=4, probe_interval=20),
    )
    stormy = MeasurePipeline(intel_cpu(), runner=stormy_runner, n_retry=4)
    stormy.measure(inputs[:8])  # the pool starts healthy
    stormy_runner.inject_profile("b", run_error_prob=0.9)  # board degrades
    results = stormy.measure(inputs[8:])
    assert stormy_runner.device_stats()["b"]["state"] != DeviceState.HEALTHY
    assert all(r.valid for r in results)
    key = task.workload_key
    assert stormy.best_cost[key] == pytest.approx(healthy.best_cost[key], rel=0.05)


# ---------------------------------------------------------------------------
# Elastic membership
# ---------------------------------------------------------------------------


def test_add_device_mid_session_takes_load(task, rng):
    runner = RpcRunner(intel_cpu(), devices=["a"], seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(_many_inputs(task, rng, 4))
    runner.add_device("b")
    pipeline.measure(_many_inputs(task, rng, 8))
    stats = runner.device_stats()
    assert stats["b"]["runs"] == 4  # round-robin includes the newcomer
    assert [d.name for d in runner.devices] == ["a", "b"]
    with pytest.raises(ValueError, match="duplicate"):
        runner.add_device("a")


def test_remove_device_drains_and_rejects_new_work(task, rng):
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(_many_inputs(task, rng, 8))
    snapshot = runner.remove_device("b")
    assert snapshot["runs"] == 4
    pipeline.measure(_many_inputs(task, rng, 6))
    stats = runner.device_stats()
    assert stats["b"]["runs"] == 4  # frozen at removal
    assert stats["a"]["runs"] == 4 + 6
    assert [d.name for d in runner.devices] == ["a"]
    with pytest.raises(KeyError, match="b"):
        runner.remove_device("b")
    # A replaced board may rejoin under its old name, with a fresh ledger.
    runner.add_device("b")
    assert runner.device_stats()["b"]["runs"] == 0


def test_remove_device_mid_as_completed_loses_zero_results(task, rng):
    """The churn half of the acceptance gate: removing a device while an
    async consumer iterates ``as_completed`` loses no results and keeps
    cost-model training exactly-once."""
    inputs = _many_inputs(task, rng, 16)
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    collected = []
    with pipeline.session(async_=True, n_workers=2) as session:
        futures = session.submit(inputs)
        for count, fut in enumerate(session.as_completed(futures)):
            collected.append(fut.result())
            if count == 3:
                runner.remove_device("b", drain=True, timeout=30.0)
    assert len(collected) == len(inputs)
    assert all(r.valid for r in collected)
    assert pipeline.measure_count == len(inputs)
    stats = runner.device_stats()
    assert stats["a"]["runs"] + stats["b"]["runs"] == len(inputs)
    assert stats["b"]["state"] == DeviceState.REMOVED
    # Exactly-once training: one sample per submitted input, despite churn.
    model = LearnedCostModel(seed=0)
    model.update(inputs, collected)
    assert model.num_samples == len(inputs)


# ---------------------------------------------------------------------------
# Affinity dispatch
# ---------------------------------------------------------------------------


def test_affinity_keeps_a_workload_on_one_device(task, inputs):
    runner = RpcRunner(intel_cpu(), devices=["a", "b", "c"], dispatch="affinity", seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(inputs[:3])
    runs = {name: entry["runs"] for name, entry in runner.device_stats().items()}
    assert sorted(runs.values()) == [0, 0, 3]  # one sticky home device


def test_affinity_spills_under_load_but_keeps_the_majority(task, rng):
    runner = RpcRunner(intel_cpu(), devices=["a", "b", "c"], dispatch="affinity", seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(_many_inputs(task, rng, 30))
    runs = sorted(
        (entry["runs"] for entry in runner.device_stats().values()), reverse=True
    )
    assert sum(runs) == 30
    assert runs[0] > runs[-1] > 0  # home keeps the plurality, others help


def test_affinity_homes_differ_across_workloads(rng):
    """Different workloads rendezvous to (generally) different homes — the
    two tasks here are chosen so they do — so affinity does not collapse
    a multi-workload session onto one board."""
    task_a = SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="mm")
    task_b = SearchTask(make_norm_dag(), intel_cpu(), desc="norm")
    runner = RpcRunner(intel_cpu(), devices=["a", "b", "c"], dispatch="affinity", seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)

    def home_for(task):
        before = {n: e["runs"] for n, e in runner.device_stats().items()}
        states = sample_initial_population(task, generate_sketches(task), 2, rng)
        pipeline.measure([MeasureInput(task, s) for s in states])
        after = runner.device_stats()
        return next(n for n, e in after.items() if e["runs"] > before[n])

    assert home_for(task_a) != home_for(task_b)


# ---------------------------------------------------------------------------
# Satellite: timeout retries (TuningOptions.retry_timeouts)
# ---------------------------------------------------------------------------


def test_retry_timeouts_recovers_transient_timeouts(task, rng):
    """Per-device ``run_timeout_prob`` faults are transient: with
    ``retry_timeouts`` on, re-dispatch recovers trials the default policy
    gives up on."""
    inputs = _many_inputs(task, rng, 12)

    def make_pipeline(retry_timeouts):
        runner = RpcRunner(
            intel_cpu(),
            devices=[DeviceProfile("t", run_timeout_prob=0.6), DeviceProfile("ok")],
            seed=0,
        )
        return MeasurePipeline(
            intel_cpu(), runner=runner, n_retry=5, retry_timeouts=retry_timeouts
        )

    default = make_pipeline(False).measure(inputs)
    lost = [r for r in default if r.error_kind == MeasureErrorNo.RUN_TIMEOUT]
    assert lost  # the fault rate actually bites
    assert all(r.retry_count == 0 for r in lost)  # old policy: no retry

    recovered = make_pipeline(True).measure(inputs)
    assert all(r.valid for r in recovered)
    assert any(r.retry_count > 0 for r in recovered)
    # Recovered costs equal the no-fault costs: a transient timeout perturbs
    # availability, not the timing of the eventually-successful run.
    clean = MeasurePipeline(
        intel_cpu(), runner=RpcRunner(intel_cpu(), devices=["t", "ok"], seed=0)
    ).measure(inputs)
    assert [r.costs for r in recovered] == [r.costs for r in clean]


def test_retry_timeouts_threads_through_options(task):
    options = TuningOptions(
        runner="rpc", devices=["a", "b"], n_retry=2, retry_timeouts=True,
        dispatch="least-loaded", circuit_breaker={"min_samples": 3},
    )
    pipeline = MeasurePipeline.from_options(intel_cpu(), options)
    assert pipeline.retry_timeouts is True
    assert pipeline.runner.fleet.dispatch == "least-loaded"
    assert pipeline.runner.fleet.breaker.min_samples == 3


def test_pool_knobs_rejected_for_device_blind_runner():
    for knob in ({"dispatch": "affinity"}, {"circuit_breaker": True}):
        with pytest.raises(ValueError, match="device-aware"):
            MeasurePipeline.from_options(
                intel_cpu(), TuningOptions(runner="local", **knob)
            )


def test_deterministic_timeouts_still_fail_fast(task, inputs):
    """A program genuinely slower than the budget times out on every
    attempt; ``retry_timeouts`` burns its retries but the final verdict is
    unchanged — and the run stays deterministic."""
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0, timeout=1e-12)
    pipeline = MeasurePipeline(
        intel_cpu(), runner=runner, n_retry=2, retry_timeouts=True
    )
    results = pipeline.measure(inputs[:4])
    assert all(r.error_kind == MeasureErrorNo.RUN_TIMEOUT for r in results)
    assert all(r.retry_count == 2 for r in results)


def test_record_round_trips_device_and_timeout_retries(task, inputs, tmp_path):
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("t", run_timeout_prob=0.6), DeviceProfile("ok")],
        seed=0,
    )
    pipeline = MeasurePipeline(
        intel_cpu(), runner=runner, n_retry=5, retry_timeouts=True
    )
    results = pipeline.measure(inputs)
    log = tmp_path / "fleet.json"
    save_records(log, inputs, results)
    records = load_records(log)
    assert [r.device for r in records] == [res.device for res in results]
    assert all(r.device in ("t", "ok") for r in records)
    assert [r.retry_count for r in records] == [res.retry_count for res in results]
    # Legacy lines (no device field) still load, defaulting to None.
    legacy = dict(records[0].to_dict())
    legacy.pop("device")
    assert TuningRecord.from_dict(legacy).device is None


# ---------------------------------------------------------------------------
# Satellite: busy-seconds attribution (device_stats under retries / async)
# ---------------------------------------------------------------------------


def _assert_stats_match_attempt_ledger(runner, results):
    """Every attempt's run and busy-seconds must be charged to the device
    that actually executed it — reconstructed from the per-attempt ledger."""
    expected_runs = {}
    expected_busy = {}
    for res in results:
        assert res.attempts, "device-pool results must carry an attempt ledger"
        assert res.device == res.attempts[-1]["device"]
        assert len(res.attempts) == 1 + res.retry_count
        for attempt in res.attempts:
            expected_runs[attempt["device"]] = expected_runs.get(attempt["device"], 0) + 1
            expected_busy[attempt["device"]] = (
                expected_busy.get(attempt["device"], 0.0) + attempt["occupancy_sec"]
            )
    stats = runner.device_stats()
    for name, entry in stats.items():
        assert entry["runs"] == expected_runs.get(name, 0)
        assert entry["busy_sec"] == pytest.approx(expected_busy.get(name, 0.0))


def test_busy_seconds_follow_the_executing_device_sync(task, rng):
    """Regression (satellite 2): a retry that lands on a different device
    charges the device that ran it, never the one that faulted first."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("flaky", run_error_prob=1.0), DeviceProfile("ok")],
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    results = pipeline.measure(_many_inputs(task, rng, 10))
    assert any(r.retry_count > 0 for r in results)
    assert any(
        len({a["device"] for a in r.attempts}) > 1 for r in results
    )  # some retries migrated devices
    _assert_stats_match_attempt_ledger(runner, results)


def test_busy_seconds_follow_the_executing_device_async(task, rng):
    """The same attribution contract under an async session's workers."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("flaky", run_error_prob=0.7), DeviceProfile("ok")],
        seed=1,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    with pipeline.session(async_=True, n_workers=3) as session:
        session.submit(_many_inputs(task, rng, 16))
        results = session.drain()
    assert all(r.valid for r in results)
    _assert_stats_match_attempt_ledger(runner, results)


def test_timed_out_run_is_charged_the_budget_not_the_program(task, inputs):
    """Regression (satellite 2): a watchdog kills a slow candidate at the
    timeout budget — charging its full estimated runtime (x repeats) was
    overstating the board's busy time and skewing least-loaded dispatch."""
    budget = 1e-9
    runner = RpcRunner(intel_cpu(), devices=["a"], seed=0, timeout=budget)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    results = pipeline.measure(inputs[:3])
    assert all(r.error_kind == MeasureErrorNo.RUN_TIMEOUT for r in results)
    stats = runner.device_stats()["a"]
    assert stats["timeouts"] == 3
    assert stats["busy_sec"] == pytest.approx(3 * budget)


# ---------------------------------------------------------------------------
# Observability: device_stats / ProgressLogger / TaskScheduler
# ---------------------------------------------------------------------------


def test_progress_logger_surfaces_breaker_state_and_estimates(task, rng):
    runner = RpcRunner(
        intel_cpu(),
        devices=["good", "bad"],
        seed=0,
        circuit_breaker=CircuitBreakerConfig(min_samples=4, probe_interval=50),
    )
    runner.inject_profile("bad", run_error_prob=1.0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    pipeline.measure(_many_inputs(task, rng, 16))
    stream = io.StringIO()
    logger = ProgressLogger(stream=stream)
    logger._track_measurer(pipeline)
    logger.on_tuning_end(object())
    out = stream.getvalue()
    assert "state=quarantined" in out
    assert "est_fault=" in out


def test_scheduler_aggregates_device_stats():
    tasks = [
        SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="mm"),
        SearchTask(make_norm_dag(), intel_cpu(), desc="norm"),
    ]
    scheduler = TaskScheduler(
        tasks,
        strategy="round_robin",
        policy_factory=lambda task, model, seed: random_search_policy(task, seed=seed),
    )
    measurer = MeasurePipeline(
        intel_cpu(), runner=RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    )
    scheduler.tune(num_measure_trials=8, num_measures_per_round=4, measurer=measurer)
    stats = scheduler.device_stats()
    assert set(stats) == {"a", "b"}
    assert sum(entry["runs"] for entry in stats.values()) == 8
    # Device-blind pipelines contribute nothing (and don't crash the merge).
    scheduler.measurers.append(MeasurePipeline(intel_cpu()))
    assert set(scheduler.device_stats()) == {"a", "b"}


def test_fleet_direct_protocol_roundtrip(task, inputs):
    """The DeviceFleet acquire/record protocol stands alone (no RpcRunner):
    what custom runners would build on."""

    class _FakeRunner:
        def __init__(self, profile):
            self.profile = profile
            self.timeout = None

        def _estimate_base(self, inp, build):
            return 1.0

    fleet = DeviceFleet(["x", "y"], _FakeRunner, dispatch="round-robin")
    ticket = fleet.acquire(inputs[0])
    assert ticket.device.name == "x" and not ticket.canary
    from repro.hardware import BuildResult, MeasureResult

    build = BuildResult(program=None)
    occupancy = fleet.record(
        ticket, inputs[0], build, MeasureResult(costs=[2.0]), clean_base=1.0
    )
    assert occupancy == pytest.approx(2.0)
    stats = fleet.device_stats()
    assert stats["x"]["runs"] == 1 and stats["x"]["inflight"] == 0
    assert stats["x"]["est_slowdown"] == pytest.approx(2.0, rel=0.9)
    assert stats["y"]["runs"] == 0
