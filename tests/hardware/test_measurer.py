"""Tests for the legacy measurement harness (now a shim over the pipeline)."""

import numpy as np
import pytest

from repro.hardware import (
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    MeasureResult,
    ProgramMeasurer,
    intel_cpu,
)
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="matmul+relu")


def test_measure_returns_costs(task):
    measurer = ProgramMeasurer(intel_cpu(), seed=0)
    result = measurer.measure_one(MeasureInput(task, task.compute_dag.init_state()))
    assert result.valid
    assert len(result.costs) == measurer.repeats
    assert result.min_cost <= result.mean_cost


def test_measure_counts_trials(task):
    measurer = ProgramMeasurer(intel_cpu(), seed=0)
    inputs = [MeasureInput(task, task.compute_dag.init_state()) for _ in range(5)]
    measurer.measure(inputs)
    assert measurer.measure_count == 5


def test_noise_is_deterministic_per_program(task):
    m1 = ProgramMeasurer(intel_cpu(), seed=7)
    m2 = ProgramMeasurer(intel_cpu(), seed=7)
    state = task.compute_dag.init_state()
    r1 = m1.measure_one(MeasureInput(task, state))
    r2 = m2.measure_one(MeasureInput(task, state))
    assert r1.costs == r2.costs


def test_noise_changes_with_seed(task):
    state = task.compute_dag.init_state()
    r1 = ProgramMeasurer(intel_cpu(), seed=1).measure_one(MeasureInput(task, state))
    r2 = ProgramMeasurer(intel_cpu(), seed=2).measure_one(MeasureInput(task, state))
    assert r1.costs != r2.costs


def test_zero_noise_gives_identical_repeats(task):
    measurer = ProgramMeasurer(intel_cpu(), noise=0.0)
    result = measurer.measure_one(MeasureInput(task, task.compute_dag.init_state()))
    assert len(set(result.costs)) == 1


def test_incomplete_program_is_a_measure_error(task):
    state = task.compute_dag.init_state()
    state.split("C", 0, [None])
    measurer = ProgramMeasurer(intel_cpu())
    result = measurer.measure_one(MeasureInput(task, state))
    assert not result.valid
    assert result.error is not None
    assert result.min_cost == float("inf")
    assert result.mean_cost == float("inf")


def test_best_state_tracked_per_workload(task):
    measurer = ProgramMeasurer(intel_cpu(), seed=0)
    naive = task.compute_dag.init_state()
    tiled = task.compute_dag.init_state()
    tiled.split("C", 0, [16])
    tiled.split("C", 2, [16])
    tiled.reorder("C", [0, 2, 1, 3, 4])
    tiled.fuse("C", [0, 1])
    tiled.parallel("C", 0)
    tiled.vectorize("C", 3)
    measurer.measure([MeasureInput(task, naive), MeasureInput(task, tiled)])
    best = measurer.best_for(task.workload_key)
    assert best is tiled
    assert measurer.best_cost_for(task.workload_key) < float("inf")


def test_best_cost_unknown_workload_is_inf():
    measurer = ProgramMeasurer(intel_cpu())
    assert measurer.best_cost_for("nope") == float("inf")


def test_measure_latency_accounting(task):
    measurer = ProgramMeasurer(intel_cpu(), measure_latency_sec=1.5)
    measurer.measure([MeasureInput(task, task.compute_dag.init_state())] * 3)
    assert measurer.elapsed_sec == pytest.approx(4.5)


def test_failed_builds_also_charge_latency(task):
    """Regression: a failed build used to count in measure_count and
    error_count but was never charged measure_latency_sec, so error-heavy
    searches undercounted simulated wall-clock."""
    measurer = ProgramMeasurer(intel_cpu(), measure_latency_sec=1.5)
    bad = task.compute_dag.init_state()
    bad.split("C", 0, [None])
    measurer.measure([MeasureInput(task, task.compute_dag.init_state()), MeasureInput(task, bad)])
    assert measurer.measure_count == 2
    assert measurer.error_count == 1
    assert measurer.elapsed_sec == pytest.approx(3.0)


def test_shim_is_a_pipeline(task):
    """The shim exposes both the legacy surface and the pipeline surface."""
    measurer = ProgramMeasurer(intel_cpu(), seed=0)
    assert isinstance(measurer, MeasurePipeline)
    assert measurer.hardware.name == "intel-20c"
    assert measurer.repeats == 3
    bad = task.compute_dag.init_state()
    bad.split("C", 0, [None])
    result = measurer.measure_one(MeasureInput(task, bad))
    assert result.error_kind == MeasureErrorNo.INSTANTIATION_ERROR
    assert measurer.error_counts == {MeasureErrorNo.INSTANTIATION_ERROR: 1}
