"""Tests for the analytical machine model.

These tests pin down the optimization landscape the search relies on: good
schedule decisions (tiling, vectorization, parallelization, fusion,
unrolling) must reduce the estimated time, and machine differences (ARM vs
Intel vs GPU) must show up in the obvious direction.
"""

import pytest

from repro.hardware import (
    CostSimulator,
    arm_cpu,
    edge_cpu,
    intel_cpu,
    manycore_numa_cpu,
    nvidia_gpu,
    wide_vector_cpu,
)
from repro.hardware.platform import target_from_name

from ..conftest import make_matmul_dag, make_matmul_relu_dag


@pytest.fixture
def sim():
    return CostSimulator(intel_cpu())


def _tiled_matmul_state(dag, parallel=True, vectorize=True, unroll=0):
    state = dag.init_state()
    state.split("C", 0, [4, 8, 4])
    state.split("C", 4, [4, 4, 16])
    state.split("C", 8, [16])
    state.reorder("C", [0, 4, 1, 5, 8, 2, 6, 9, 3, 7])
    state.fuse("C", [0, 1])
    if parallel:
        state.parallel("C", 0)
    if vectorize:
        state.vectorize("C", 8)
    if unroll:
        state.pragma("C", "auto_unroll_max_step", unroll)
    return state


@pytest.fixture
def dag512():
    return make_matmul_dag(512, 512, 512)


def test_estimate_positive_and_has_floor(sim, matmul_dag):
    t = sim.estimate(matmul_dag.init_state())
    assert t >= CostSimulator.MIN_PROGRAM_TIME


def test_tiling_beats_naive(sim, dag512):
    naive = sim.estimate(dag512.init_state())
    tiled = sim.estimate(_tiled_matmul_state(dag512))
    assert tiled < naive / 10


def test_parallel_annotation_helps(sim, dag512):
    with_parallel = sim.estimate(_tiled_matmul_state(dag512, parallel=True))
    without_parallel = sim.estimate(_tiled_matmul_state(dag512, parallel=False))
    assert with_parallel < without_parallel


def test_vectorize_annotation_helps(sim, dag512):
    with_vec = sim.estimate(_tiled_matmul_state(dag512, vectorize=True))
    without_vec = sim.estimate(_tiled_matmul_state(dag512, vectorize=False))
    assert with_vec < without_vec


def test_unroll_pragma_reduces_loop_overhead(sim, dag512):
    base = sim.estimate_detailed(_tiled_matmul_state(dag512, unroll=0))
    unrolled = sim.estimate_detailed(_tiled_matmul_state(dag512, unroll=512))
    base_overhead = sum(n.overhead_time for n in base.nests)
    unrolled_overhead = sum(n.overhead_time for n in unrolled.nests)
    assert unrolled_overhead < base_overhead


def test_fusion_reduces_consumer_cost(sim):
    dag = make_matmul_relu_dag(256, 256, 256)
    unfused = dag.init_state()
    unfused.split("C", 0, [16])
    unfused.split("C", 2, [16])
    unfused.reorder("C", [0, 2, 1, 3, 4])
    unfused.parallel("C", 0)

    fused = dag.init_state()
    fused.split("C", 0, [16])
    fused.split("C", 2, [16])
    fused.reorder("C", [0, 2, 1, 3, 4])
    fused.compute_at("D", "C", 1)
    fused.parallel("C", 0)

    cost_unfused = sim.estimate_detailed(unfused)
    cost_fused = sim.estimate_detailed(fused)
    d_unfused = next(n for n in cost_unfused.nests if n.name == "D")
    d_fused = next(n for n in cost_fused.nests if n.name == "D")
    # The fused consumer reads tile-resident data rather than streaming the
    # whole intermediate from memory.
    assert d_fused.memory_time <= d_unfused.memory_time


def test_throughput_is_flops_over_time(sim, matmul_dag):
    state = matmul_dag.init_state()
    detailed = sim.estimate_detailed(state)
    assert sim.throughput(state) == pytest.approx(
        detailed.total_flops / detailed.total_seconds, rel=1e-9
    )


def test_gflops_never_exceeds_machine_peak(sim, dag512):
    hw = intel_cpu()
    best = sim.estimate_detailed(_tiled_matmul_state(dag512, unroll=512))
    assert best.gflops <= hw.peak_flops() / 1e9 * 1.05


def test_arm_is_slower_than_intel(dag512):
    state_builder = _tiled_matmul_state
    intel_time = CostSimulator(intel_cpu()).estimate(state_builder(dag512))
    arm_time = CostSimulator(arm_cpu()).estimate(state_builder(dag512))
    assert arm_time > intel_time * 5


def test_gpu_needs_parallelism(dag512):
    gpu = CostSimulator(nvidia_gpu())
    parallel = gpu.estimate(_tiled_matmul_state(dag512, parallel=True))
    serial = gpu.estimate(_tiled_matmul_state(dag512, parallel=False))
    assert parallel < serial / 5


def test_nest_cost_breakdown_fields(sim, dag512):
    detailed = sim.estimate_detailed(_tiled_matmul_state(dag512))
    nest = detailed.nests[0]
    assert nest.flops > 0
    assert nest.parallel_factor >= 1.0
    assert nest.vector_speedup >= 1.0
    assert nest.traffic_bytes
    assert nest.total == max(nest.compute_time, nest.memory_time, nest.overhead_time)


def test_target_lookup():
    assert target_from_name("intel-cpu").kind == "cpu"
    assert target_from_name("nvidia-gpu").kind == "gpu"
    assert target_from_name("wide-vector-cpu").vector_lanes == 16
    assert target_from_name("manycore-numa-cpu").num_cores == 64
    assert target_from_name("edge-cpu").num_cores == 2
    # Unknown names raise KeyError listing every registered target.
    with pytest.raises(KeyError) as excinfo:
        target_from_name("tpu-v9")
    message = str(excinfo.value)
    for name in (
        "tpu-v9",
        "intel-cpu",
        "intel-cpu-avx512",
        "arm-cpu",
        "nvidia-gpu",
        "wide-vector-cpu",
        "manycore-numa-cpu",
        "edge-cpu",
    ):
        assert name in message


def test_hardware_presets_are_sane():
    for hw in (
        intel_cpu(),
        arm_cpu(),
        nvidia_gpu(),
        wide_vector_cpu(),
        manycore_numa_cpu(),
        edge_cpu(),
    ):
        assert hw.num_cores >= 1
        assert hw.peak_flops() > 0
        assert hw.cache_levels[0].capacity_bytes < hw.cache_levels[-1].capacity_bytes or len(hw.cache_levels) == 1
