"""Tests for the builder/runner measurement pipeline and its error taxonomy.

Includes the no-fault parity gate: the pipeline (and the ``ProgramMeasurer``
shim over it) must match a preserved copy of the pre-pipeline serial
measurer bit for bit — costs, error strings, counters and best-state
tracking.
"""

import hashlib

import numpy as np
import pytest

from repro.hardware import (
    CostSimulator,
    LocalBuilder,
    LocalRunner,
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    MeasureResult,
    ProgramMeasurer,
    RandomFaults,
    intel_cpu,
    registered_builders,
    registered_runners,
    resolve_builder,
    resolve_runner,
)
from repro.search import generate_sketches, sample_initial_population
from repro.task import SearchTask, TuningOptions

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="matmul+relu")


@pytest.fixture
def states(task, rng):
    sketches = generate_sketches(task)
    return sample_initial_population(task, sketches, 8, rng)


def _incomplete_state(task):
    state = task.compute_dag.init_state()
    state.split("C", 0, [None])
    return state


# ---------------------------------------------------------------------------
# Reference implementation: the pre-pipeline serial ProgramMeasurer,
# preserved verbatim so the refactor can be checked against it forever.
# ---------------------------------------------------------------------------


class _ReferenceSerialMeasurer:
    def __init__(self, hardware, noise=0.03, repeats=3, seed=0):
        self.simulator = CostSimulator(hardware)
        self.noise = noise
        self.repeats = repeats
        self.seed = seed
        self.measure_count = 0
        self.error_count = 0
        self.best_cost = {}
        self.best_state = {}

    def _noise_factors(self, state, count):
        if self.noise <= 0:
            return np.ones(count)
        key = repr(state.serialize_steps()).encode()
        digest = hashlib.sha256(key + str(self.seed).encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        return 1.0 + rng.normal(0.0, self.noise, size=count)

    def measure_one(self, inp):
        state = inp.state
        try:
            if not state.is_concrete():
                raise ValueError("cannot measure an incomplete program (placeholder tile sizes)")
            base = self.simulator.estimate(state)
        except Exception as exc:
            self.measure_count += 1
            self.error_count += 1
            return MeasureResult(costs=[], error=f"{type(exc).__name__}: {exc}")
        factors = np.clip(self._noise_factors(state, self.repeats), 0.5, 2.0)
        costs = [float(base * f) for f in factors]
        self.measure_count += 1
        result = MeasureResult(costs=costs)
        key = inp.task.workload_key
        if result.min_cost < self.best_cost.get(key, float("inf")):
            self.best_cost[key] = result.min_cost
            self.best_state[key] = state
        return result

    def measure(self, inputs):
        return [self.measure_one(inp) for inp in inputs]


def _assert_result_parity(res_a, res_b):
    assert res_a.costs == res_b.costs  # bit-identical floats
    assert res_a.error == res_b.error


@pytest.mark.parametrize("make_new", [
    lambda hw: ProgramMeasurer(hw, seed=7),
    lambda hw: MeasurePipeline(hw, seed=7),
    lambda hw: MeasurePipeline(hw, n_parallel=4, seed=7),
])
def test_no_fault_parity_with_serial_reference(task, states, make_new):
    """Shim, serial pipeline and parallel pipeline are all bit-identical to
    the preserved pre-refactor measurer on the no-fault path."""
    inputs = [MeasureInput(task, s) for s in states] + [
        MeasureInput(task, _incomplete_state(task))
    ]
    reference = _ReferenceSerialMeasurer(intel_cpu(), seed=7)
    new = make_new(intel_cpu())
    ref_results = reference.measure(inputs)
    new_results = new.measure(inputs)
    for ref, res in zip(ref_results, new_results):
        _assert_result_parity(ref, res)
    assert new.measure_count == reference.measure_count
    assert new.error_count == reference.error_count
    assert new.best_cost == reference.best_cost
    assert {k: id(v) for k, v in new.best_state.items()} == {
        k: id(v) for k, v in reference.best_state.items()
    }


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


def test_incomplete_program_is_instantiation_error(task):
    pipeline = MeasurePipeline(intel_cpu())
    result = pipeline.measure_one(MeasureInput(task, _incomplete_state(task)))
    assert not result.valid
    assert result.error_kind == MeasureErrorNo.INSTANTIATION_ERROR
    assert result.min_cost == float("inf")
    assert pipeline.error_counts == {MeasureErrorNo.INSTANTIATION_ERROR: 1}


def test_valid_result_has_no_error_kind(task):
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    result = pipeline.measure_one(MeasureInput(task, task.compute_dag.init_state()))
    assert result.valid
    assert result.error_kind == MeasureErrorNo.NO_ERROR
    assert result.elapsed_sec > 0  # wall-clock was tracked


def test_legacy_error_string_classified_unknown():
    result = MeasureResult(costs=[], error="ValueError: bad schedule")
    assert not result.valid
    assert result.error_kind == MeasureErrorNo.UNKNOWN_ERROR


def test_out_of_taxonomy_error_no_does_not_crash(task):
    """A custom runner/fault model may emit codes outside the taxonomy; they
    classify as UNKNOWN_ERROR instead of raising in accounting/logging."""
    result = MeasureResult(costs=[], error="vendor: exotic failure", error_no=42)
    assert result.error_kind == MeasureErrorNo.UNKNOWN_ERROR
    assert not result.valid

    class ExoticRunner(LocalRunner):
        def run(self, inputs, build_results):
            return [
                MeasureResult(costs=[], error="vendor: exotic failure", error_no=42)
                for _ in inputs
            ]

    pipeline = MeasurePipeline(intel_cpu(), runner=ExoticRunner(intel_cpu()))
    pipeline.measure([MeasureInput(task, task.compute_dag.init_state())])
    assert pipeline.error_counts == {MeasureErrorNo.UNKNOWN_ERROR: 1}


def test_incomplete_program_wins_over_injected_fault(task):
    """An incomplete program is rejected before fault injection: it must
    classify as INSTANTIATION_ERROR even under an always-fail fault model."""
    pipeline = MeasurePipeline(
        intel_cpu(), fault_model=RandomFaults(build_error_prob=1.0, seed=0)
    )
    result = pipeline.measure_one(MeasureInput(task, _incomplete_state(task)))
    assert result.error_kind == MeasureErrorNo.INSTANTIATION_ERROR


def test_injected_build_fault_charges_compile_latency(task, states):
    """A build that fails still occupied the compiler: the emulated latency
    counts toward the candidate's elapsed time."""
    builder = LocalBuilder(
        build_latency_sec=0.01, fault_model=RandomFaults(build_error_prob=1.0, seed=0)
    )
    pipeline = MeasurePipeline(intel_cpu(), builder=builder)
    result = pipeline.measure_one(MeasureInput(task, states[0]))
    assert result.error_kind == MeasureErrorNo.BUILD_ERROR
    assert result.elapsed_sec >= 0.01


def test_injected_build_fault(task, states):
    faults = RandomFaults(build_error_prob=1.0, seed=0)
    pipeline = MeasurePipeline(intel_cpu(), fault_model=faults)
    results = pipeline.measure([MeasureInput(task, s) for s in states])
    assert all(r.error_kind == MeasureErrorNo.BUILD_ERROR for r in results)
    assert pipeline.error_count == len(states)
    assert pipeline.best_cost == {}  # faults never become "best" programs


def test_injected_run_timeout(task, states):
    faults = RandomFaults(run_timeout_prob=1.0, seed=0)
    pipeline = MeasurePipeline(intel_cpu(), fault_model=faults)
    results = pipeline.measure([MeasureInput(task, s) for s in states])
    assert all(r.error_kind == MeasureErrorNo.RUN_TIMEOUT for r in results)


def test_transient_run_fault_is_transient(task):
    """A transient device error must not be sticky: re-measuring the same
    program draws a fresh fault, so retries can succeed."""
    faults = RandomFaults(run_error_prob=0.5, seed=3)
    pipeline = MeasurePipeline(intel_cpu(), fault_model=faults, seed=0)
    state = task.compute_dag.init_state()
    kinds = set()
    for _ in range(12):
        res = pipeline.measure_one(MeasureInput(task, state))
        kinds.add(res.error_kind)
    assert MeasureErrorNo.NO_ERROR in kinds
    assert MeasureErrorNo.RUN_ERROR in kinds


def test_fault_injection_is_deterministic(task, states):
    inputs = [MeasureInput(task, s) for s in states]

    def run():
        pipeline = MeasurePipeline(
            intel_cpu(), fault_model=RandomFaults(build_error_prob=0.5, seed=11), seed=0
        )
        return [(r.error_no, tuple(r.costs)) for r in pipeline.measure(inputs)]

    assert run() == run()


def test_flaky_device_extra_noise(task):
    state = task.compute_dag.init_state()
    clean = MeasurePipeline(intel_cpu(), seed=0).measure_one(MeasureInput(task, state))
    flaky = MeasurePipeline(
        intel_cpu(), fault_model=RandomFaults(extra_noise=0.5, seed=5), seed=0
    ).measure_one(MeasureInput(task, state))
    assert flaky.valid
    assert flaky.costs != clean.costs


def test_run_timeout_kills_slow_programs(task):
    """A candidate whose simulated runtime exceeds the budget is reported as
    RUN_TIMEOUT instead of a cost (the naive untiled program is slow)."""
    state = task.compute_dag.init_state()
    base = CostSimulator(intel_cpu()).estimate(state)
    pipeline = MeasurePipeline(intel_cpu(), run_timeout=base / 2)
    result = pipeline.measure_one(MeasureInput(task, state))
    assert result.error_kind == MeasureErrorNo.RUN_TIMEOUT
    generous = MeasurePipeline(intel_cpu(), run_timeout=base * 10)
    assert generous.measure_one(MeasureInput(task, state)).valid


def test_build_timeout_flags_slow_builds(task, states):
    builder = LocalBuilder(n_parallel=2, timeout=0.01, build_latency_sec=0.05)
    pipeline = MeasurePipeline(intel_cpu(), builder=builder)
    results = pipeline.measure([MeasureInput(task, s) for s in states[:3]])
    assert all(r.error_kind == MeasureErrorNo.BUILD_TIMEOUT for r in results)


def test_build_timeout_measures_build_time_not_queue_wait(task, states):
    """The timeout bounds each candidate's own build, not its queue position:
    many fast builds funneled through few workers must not be flagged just
    because the batch takes longer than the per-candidate budget."""
    builder = LocalBuilder(n_parallel=2, timeout=0.04, build_latency_sec=0.01)
    pipeline = MeasurePipeline(intel_cpu(), builder=builder, seed=0)
    results = pipeline.measure([MeasureInput(task, s) for s in states])
    assert all(r.valid for r in results)


# ---------------------------------------------------------------------------
# Parallel builder
# ---------------------------------------------------------------------------


def test_parallel_builder_matches_serial(task, states):
    inputs = [MeasureInput(task, s) for s in states]
    serial = MeasurePipeline(intel_cpu(), n_parallel=1, seed=0)
    parallel = MeasurePipeline(intel_cpu(), n_parallel=8, seed=0)
    for a, b in zip(serial.measure(inputs), parallel.measure(inputs)):
        _assert_result_parity(a, b)
    assert serial.best_cost == parallel.best_cost


def test_parallel_builder_preserves_input_order(task, states):
    """Results come back in input order even when builds finish out of order."""
    builder = LocalBuilder(n_parallel=4, build_latency_sec=0.001)
    pipeline = MeasurePipeline(intel_cpu(), builder=builder, seed=0)
    inputs = [MeasureInput(task, s) for s in states]
    results = pipeline.measure(inputs)
    reference = MeasurePipeline(intel_cpu(), seed=0).measure(inputs)
    assert [r.costs for r in results] == [r.costs for r in reference]


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


def test_failed_builds_charge_simulated_wall_clock(task):
    """Regression: the old measurer never charged measure_latency_sec for a
    failed build, undercounting error-heavy searches."""
    pipeline = MeasurePipeline(intel_cpu(), measure_latency_sec=2.0)
    pipeline.measure(
        [
            MeasureInput(task, task.compute_dag.init_state()),
            MeasureInput(task, _incomplete_state(task)),
        ]
    )
    assert pipeline.measure_count == 2
    assert pipeline.error_count == 1
    assert pipeline.elapsed_sec == pytest.approx(4.0)


def test_error_counts_by_kind(task, states):
    faults = RandomFaults(build_error_prob=0.4, run_timeout_prob=0.3, seed=2)
    pipeline = MeasurePipeline(intel_cpu(), fault_model=faults)
    inputs = [MeasureInput(task, s) for s in states]
    results = pipeline.measure(inputs + [MeasureInput(task, _incomplete_state(task))])
    observed = {}
    for res in results:
        if not res.valid:
            observed[res.error_kind] = observed.get(res.error_kind, 0) + 1
    assert pipeline.error_counts == observed
    assert pipeline.error_count == sum(observed.values())


# ---------------------------------------------------------------------------
# Registries and options plumbing
# ---------------------------------------------------------------------------


def test_builder_runner_registries():
    assert "local" in registered_builders()
    assert "local" in registered_runners()
    assert "rpc" in registered_builders()
    assert "rpc" in registered_runners()
    assert resolve_builder("local") is LocalBuilder
    assert resolve_runner("local") is LocalRunner
    with pytest.raises(KeyError, match="registered builders"):
        resolve_builder("remote-farm")
    with pytest.raises(KeyError, match="registered runners"):
        resolve_runner("remote-farm")


def test_pipeline_from_options(task):
    options = TuningOptions(n_parallel=4, build_timeout=10.0, run_timeout=5.0, seed=9)
    pipeline = MeasurePipeline.from_options(intel_cpu(), options)
    assert isinstance(pipeline.builder, LocalBuilder)
    assert pipeline.builder.n_parallel == 4
    assert pipeline.builder.timeout == 10.0
    assert isinstance(pipeline.runner, LocalRunner)
    assert pipeline.runner.timeout == 5.0
    assert pipeline.seed == 9
    assert pipeline.measure_one(MeasureInput(task, task.compute_dag.init_state())).valid


def test_from_options_rejects_instance_plus_stage_knobs():
    """Stage knobs apply only to name-selected stages; pairing a ready
    instance with knobs for that stage must error, not silently ignore."""
    with pytest.raises(ValueError, match="n_parallel"):
        MeasurePipeline.from_options(
            intel_cpu(), TuningOptions(builder=LocalBuilder(), n_parallel=8)
        )
    with pytest.raises(ValueError, match="run_timeout"):
        MeasurePipeline.from_options(
            intel_cpu(), TuningOptions(runner=LocalRunner(intel_cpu()), run_timeout=1.0)
        )
    # Instances without conflicting knobs are fine.
    pipeline = MeasurePipeline.from_options(
        intel_cpu(),
        TuningOptions(builder=LocalBuilder(n_parallel=2), runner=LocalRunner(intel_cpu())),
    )
    assert pipeline.builder.n_parallel == 2


def test_options_validate_pipeline_knobs():
    with pytest.raises(ValueError):
        TuningOptions(n_parallel=0)
    with pytest.raises(ValueError):
        TuningOptions(build_timeout=0)
    with pytest.raises(ValueError):
        TuningOptions(run_timeout=-1)


def test_pipeline_requires_hardware_or_runner():
    with pytest.raises(ValueError):
        MeasurePipeline()


def test_pipeline_rejects_instance_plus_stage_knobs():
    """Constructor mirrors from_options: knobs for a stage supplied as a
    ready instance are rejected, never silently dropped."""
    with pytest.raises(ValueError, match="n_parallel"):
        MeasurePipeline(intel_cpu(), builder=LocalBuilder(), n_parallel=8)
    with pytest.raises(ValueError, match="run_timeout"):
        MeasurePipeline(intel_cpu(), runner=LocalRunner(intel_cpu()), run_timeout=1.0)
    with pytest.raises(ValueError, match="fault_model"):
        MeasurePipeline(
            intel_cpu(),
            builder=LocalBuilder(),
            runner=LocalRunner(intel_cpu()),
            fault_model=RandomFaults(build_error_prob=1.0),
        )
    # fault_model still reaches the one auto-built stage.
    pipeline = MeasurePipeline(
        intel_cpu(), builder=LocalBuilder(), fault_model=RandomFaults(run_error_prob=1.0)
    )
    assert isinstance(pipeline.runner.fault_model, RandomFaults)


# ---------------------------------------------------------------------------
# RandomFaults retry-counter bound
# ---------------------------------------------------------------------------


def test_transient_draw_tracking_is_bounded(task, states):
    """The per-program retry-counter dict must not grow for the life of the
    fault model: only the most recently drawn programs stay tracked."""
    faults = RandomFaults(run_error_prob=0.5, seed=0, max_tracked_programs=3)
    for state in states:  # 8 distinct programs > the bound
        faults.run_fault(MeasureInput(task, state))
    assert len(faults._transient_draws) == 3
    # The survivors are the most recent programs, with their counters intact.
    faults.run_fault(MeasureInput(task, states[-1]))
    key = max(faults._transient_draws, key=faults._transient_draws.get)
    assert faults._transient_draws[key] == 2


def test_fault_model_reset_clears_counters(task, states):
    faults = RandomFaults(run_error_prob=0.5, seed=0)
    for state in states[:4]:
        faults.run_fault(MeasureInput(task, state))
    assert faults._transient_draws
    faults.reset()
    assert not faults._transient_draws


def test_fault_model_validates_tracking_bound():
    with pytest.raises(ValueError, match="max_tracked_programs"):
        RandomFaults(run_error_prob=0.5, max_tracked_programs=0)


# ---------------------------------------------------------------------------
# Retry accounting (the backend-independent part; end-to-end retry semantics
# live in tests/hardware/test_rpc.py)
# ---------------------------------------------------------------------------


def test_retry_attempts_charge_simulated_wall_clock(task):
    """Each retry attempt is a full extra device occupation: a trial with
    retry_count=k is charged (1+k) * measure_latency_sec."""
    state = task.compute_dag.init_state()
    pipeline = MeasurePipeline(
        intel_cpu(),
        fault_model=RandomFaults(run_error_prob=0.5, seed=3),
        seed=0,
        n_retry=4,
        measure_latency_sec=2.0,
    )
    results = pipeline.measure([MeasureInput(task, state)])
    retries = results[0].retry_count
    assert retries > 0  # seed 3 faults this program's first attempt
    assert results[0].valid
    assert pipeline.retry_count == retries
    assert pipeline.elapsed_sec == pytest.approx(2.0 * (1 + retries))


def test_pipeline_validates_n_retry():
    with pytest.raises(ValueError, match="n_retry"):
        MeasurePipeline(intel_cpu(), n_retry=-1)


def test_retry_counts_build_time_once(task):
    """The build executed once; a retried trial's elapsed_sec must embed the
    build cost once, not once per attempt."""
    state = task.compute_dag.init_state()
    build_latency = 0.05
    pipeline = MeasurePipeline(
        intel_cpu(),
        builder=LocalBuilder(build_latency_sec=build_latency),
        fault_model=RandomFaults(run_error_prob=0.5, seed=3),
        n_retry=4,
    )
    result = pipeline.measure_one(MeasureInput(task, state))
    assert result.valid and result.retry_count > 0
    # Double-counting would push elapsed past (1 + retry_count) * latency.
    assert result.elapsed_sec < build_latency * 1.5
    assert result.elapsed_sec >= build_latency


def test_from_options_rejects_runner_pinned_to_other_hardware():
    """A ready runner pinned to one machine must not silently measure a
    session targeting different hardware."""
    from repro.hardware import arm_cpu

    options = TuningOptions(runner=LocalRunner(intel_cpu()))
    with pytest.raises(ValueError, match="pinned"):
        MeasurePipeline.from_options(arm_cpu(), options)
    assert MeasurePipeline.from_options(intel_cpu(), options).hardware.name == "intel-20c"
