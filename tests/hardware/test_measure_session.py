"""Tests for the asynchronous measurement sessions (`MeasureSession`).

Covers the session API itself (submit / as_completed / drain / close /
cancellation), the sync-shim parity guarantee (``measure()`` and sync
sessions are bit-identical to the classic batch path), async/sync result
parity under fault injection, the pipelined tuning drivers (policy and task
scheduler), and the StopTuning mid-round cleanup regression: no leaked
futures, no double-counted error counters.
"""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro import (
    MeasureCallback,
    MeasureResultEvent,
    RecordToFile,
    SearchTask,
    StopTuning,
    Tuner,
    TuningOptions,
    intel_cpu,
    load_records,
)
from repro.hardware import (
    LocalBuilder,
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    RandomFaults,
)
from repro.scheduler import TaskScheduler
from repro.search import SketchPolicy, generate_sketches, sample_initial_population

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="matmul+relu")


@pytest.fixture
def inputs(task, rng):
    sketches = generate_sketches(task)
    states = sample_initial_population(task, sketches, 8, rng)
    return [MeasureInput(task, s) for s in states]


def _result_signature(results):
    """The deterministic part of a result (wall-clock fields excluded)."""
    return [(r.costs, r.error, int(r.error_no), r.retry_count) for r in results]


# ---------------------------------------------------------------------------
# Session mechanics
# ---------------------------------------------------------------------------


def test_measure_is_a_submit_then_drain_shim(task, inputs):
    """measure() and an explicit sync session produce identical results and
    counters — the shim really is submit-then-drain."""
    classic = MeasurePipeline(intel_cpu(), seed=0)
    classic_results = classic.measure(inputs)

    sessioned = MeasurePipeline(intel_cpu(), seed=0)
    with sessioned.session(async_=False) as session:
        futures = session.submit(inputs)
        results = session.drain()
    assert _result_signature(results) == _result_signature(classic_results)
    assert all(f.done() for f in futures)
    assert sessioned.measure_count == classic.measure_count
    assert sessioned.error_counts == classic.error_counts
    assert sessioned.best_cost == classic.best_cost


def test_sync_session_lazy_result_triggers_processing(task, inputs):
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    with pipeline.session(async_=False) as session:
        futures = session.submit(inputs[:2])
        # no drain: result() itself must process the pending batch
        res = futures[0].result()
        assert res.valid
        assert futures[1].done()


def test_async_session_matches_sync_results(task, inputs):
    """Single-device async measurement is bit-identical to the sync batch
    path regardless of worker interleaving (hash-seeded noise and
    per-program fault draws are order-independent)."""
    sync = MeasurePipeline(intel_cpu(), seed=0)
    sync_results = sync.measure(inputs)

    async_ = MeasurePipeline(intel_cpu(), seed=0)
    with async_.session(async_=True, n_workers=4) as session:
        futures = session.submit(inputs)
        results = [f.result() for f in futures]
    assert _result_signature(results) == _result_signature(sync_results)
    assert async_.measure_count == sync.measure_count == len(inputs)


def test_async_session_fault_and_retry_parity(task, inputs):
    """Transient faults and retries resolve identically async and sync:
    attempt counters are per program, serialized under the pipeline lock."""
    sync = MeasurePipeline(
        intel_cpu(), fault_model=RandomFaults(run_error_prob=0.4, seed=3),
        n_retry=2, seed=0,
    )
    sync_results = sync.measure(inputs)

    async_ = MeasurePipeline(
        intel_cpu(), fault_model=RandomFaults(run_error_prob=0.4, seed=3),
        n_retry=2, seed=0,
    )
    with async_.session(async_=True, n_workers=4) as session:
        results = [f.result() for f in session.submit(inputs)]
    assert _result_signature(results) == _result_signature(sync_results)
    assert async_.retry_count == sync.retry_count
    assert async_.error_counts == sync.error_counts


def test_as_completed_streams_every_future(task, inputs):
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    with pipeline.session(async_=True, n_workers=2, measure_latency_sec=0.002) as session:
        futures = session.submit(inputs)
        seen = []
        for fut in session.as_completed(futures):
            assert fut.done()
            seen.append(fut)
        assert set(id(f) for f in seen) == set(id(f) for f in futures)
        # a second sweep finds nothing left uncollected
        assert session.drain() == []


def test_as_completed_timeout_raises(task, inputs):
    pipeline = MeasurePipeline(
        intel_cpu(), builder=LocalBuilder(build_latency_sec=0.5), seed=0
    )
    with pipeline.session(async_=True, n_workers=1) as session:
        futures = session.submit(inputs[:2])
        with pytest.raises(TimeoutError):
            for _ in session.as_completed(futures, timeout=0.02):
                pass
        # the session still closes cleanly (running work finishes)


def test_cancel_pending_recalls_queued_work(task, inputs):
    """Queued futures cancel (CancelledError, never accounted); running and
    finished ones do not."""
    pipeline = MeasurePipeline(
        intel_cpu(), builder=LocalBuilder(build_latency_sec=0.05), seed=0
    )
    with pipeline.session(async_=True, n_workers=1) as session:
        futures = session.submit(inputs)
        time.sleep(0.01)  # let the single worker start the first build
        cancelled = session.cancel_pending()
        assert cancelled > 0
        done = [f for f in futures if not f.cancelled()]
        for fut in done:
            assert fut.result().valid
        for fut in futures:
            if fut.cancelled():
                with pytest.raises(CancelledError):
                    fut.result()
    executed = len(inputs) - cancelled
    assert pipeline.measure_count == executed
    assert pipeline.error_count == 0


def test_session_rejects_submit_after_close(task, inputs):
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    session = pipeline.session(async_=True)
    session.submit(inputs[:1])[0].result()
    session.close()
    with pytest.raises(RuntimeError):
        session.submit(inputs[1:2])
    session.close()  # idempotent


def test_session_validates_knobs(task):
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    with pytest.raises(ValueError):
        pipeline.session(measure_latency_sec=-1.0)
    with pytest.raises(ValueError):
        pipeline.session(n_workers=0)


def test_async_measure_knob_threads_from_options(task):
    options = TuningOptions(async_measure=True)
    pipeline = MeasurePipeline.from_options(intel_cpu(), options)
    assert pipeline.async_measure
    # session() follows the pipeline default; explicit async_ overrides it
    session = pipeline.session()
    assert session.async_mode
    session.close()
    session = pipeline.session(async_=False)
    assert not session.async_mode
    session.close()


def test_rpc_builder_dispatches_single_builds_through_pool(task, inputs):
    """Async session workers route single builds into the rpc process pool
    (build_one_dispatch) and results match the local builder bit for bit."""
    from repro.hardware import RpcBuilder

    local = MeasurePipeline(intel_cpu(), seed=0)
    local_results = local.measure(inputs)

    builder = RpcBuilder(n_parallel=2)
    rpc = MeasurePipeline(intel_cpu(), builder=builder, seed=0)
    try:
        with rpc.session(async_=True, n_workers=2) as session:
            results = [f.result() for f in session.submit(inputs)]
        assert builder._pool is not None  # the pool actually served the builds
    finally:
        builder.close()
    assert _result_signature(results) == _result_signature(local_results)


# ---------------------------------------------------------------------------
# Pipelined tuning drivers
# ---------------------------------------------------------------------------


def test_async_and_sync_tuner_sessions_reach_the_same_best_state(task):
    """End-to-end satellite: seeded sync and async sessions with RandomFaults
    enabled converge to the same best state.  retained_best=0 keeps the
    proposals result-independent, so the overlap cannot change the
    trajectory — only the schedule of measurement."""

    def run(async_measure):
        measurer = MeasurePipeline(
            intel_cpu(),
            fault_model=RandomFaults(run_error_prob=0.3, seed=5),
            n_retry=1,
            seed=0,
            async_measure=async_measure,
        )
        options = TuningOptions(num_measure_trials=24, num_measures_per_round=8, seed=0)
        result = Tuner(
            task, policy="random", options=options, measurer=measurer,
            policy_kwargs={"retained_best": 0},
        ).tune()
        return result, measurer

    sync_result, sync_measurer = run(False)
    async_result, async_measurer = run(True)

    assert async_result.best_cost == sync_result.best_cost
    assert (
        async_result.best_state.serialize_steps()
        == sync_result.best_state.serialize_steps()
    )
    assert async_result.history == sync_result.history
    assert async_measurer.measure_count == sync_measurer.measure_count
    assert async_measurer.error_counts == sync_measurer.error_counts
    assert async_measurer.retry_count == sync_measurer.retry_count


def test_pipelined_policy_tune_consumes_full_budget(task):
    policy = SketchPolicy(task, seed=0)
    measurer = MeasurePipeline(intel_cpu(), seed=0, async_measure=True)
    policy.tune(
        TuningOptions(num_measure_trials=24, num_measures_per_round=8), measurer
    )
    assert policy.num_trials == 24
    assert policy.num_trials == measurer.measure_count
    assert len(policy.history) == 3


def test_pipelined_scheduler_visits_every_task(intel_hardware):
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a"),
        SearchTask(make_matmul_relu_dag(96, 96, 96), intel_hardware, desc="b"),
    ]
    scheduler = TaskScheduler(tasks, seed=0)
    best = scheduler.tune(32, num_measures_per_round=8, async_measure=True)
    assert scheduler.total_trials == 32
    # warm-up (with in-flight lookahead counted) still visits both tasks
    assert all(a > 0 for a in scheduler.allocations)
    assert all(c < float("inf") for c in best)
    assert scheduler.measure_error_count() == sum(
        m.error_count for m in {id(m): m for m in scheduler.measurers}.values()
    )


def test_legacy_round_only_policies_fall_back_to_sync(task):
    """A policy without the propose/ingest split cannot pipeline; async
    sessions fall back to the batch-synchronous loop instead of breaking."""

    policy = SketchPolicy(task, seed=0)
    assert policy.supports_pipelining

    from repro.search.policy import SearchPolicy

    class Bare(SearchPolicy):
        def continue_search_one_round(self, num_measures, measurer, callbacks=()):
            return [], []

    bare = Bare(task)
    assert not bare.supports_pipelining
    measurer = MeasurePipeline(intel_cpu(), seed=0, async_measure=True)
    # async request + no split -> sync loop, which ends on the empty round
    assert bare.tune(TuningOptions(num_measure_trials=8), measurer) is None


# ---------------------------------------------------------------------------
# StopTuning mid-round: the cleanup regression (satellite)
# ---------------------------------------------------------------------------


class _StopAfter(MeasureCallback):
    def __init__(self, n):
        self.n = n
        self.seen = 0

    def on_result(self, event):
        self.seen += 1
        if self.seen >= self.n:
            raise StopTuning("enough")


def test_stop_tuning_mid_round_drains_and_cancels_cleanly(task, tmp_path):
    """Raising StopTuning from on_result mid-round must cancel the queued
    remainder, drain the running work, and account every executed trial
    exactly once: policy trials == pipeline trials == recorded lines, and
    the error counters match the recorded errors (no double counting)."""
    log = tmp_path / "stopped.json"
    policy = SketchPolicy(task, seed=0)
    measurer = MeasurePipeline(
        intel_cpu(),
        builder=LocalBuilder(build_latency_sec=0.02),
        fault_model=RandomFaults(run_error_prob=0.5, seed=7),
        seed=0,
        async_measure=True,
    )
    stopper = _StopAfter(2)
    policy.tune(
        TuningOptions(num_measure_trials=64, num_measures_per_round=8),
        measurer,
        [stopper, RecordToFile(log)],
    )
    # the lookahead round was recalled: well under the full budget ran
    assert policy.num_trials < 64
    assert policy.num_trials == measurer.measure_count
    records = load_records(log, strict=True)
    assert len(records) == measurer.measure_count
    recorded_errors = sum(1 for r in records if not r.valid)
    assert recorded_errors == measurer.error_count
    assert sum(measurer.error_counts.values()) == measurer.error_count
    # nothing half-open survives the session: no worker thread leaked
    time.sleep(0.01)
    assert not [
        t for t in threading.enumerate() if t.name.startswith("MeasureSession-worker")
    ]


def test_stop_tuning_mid_round_sync_path_still_observes_full_round(task):
    """On the synchronous path the batch is already measured when on_result
    fires; the stop unwinds after the round is ingested and counted once."""
    policy = SketchPolicy(task, seed=0)
    measurer = MeasurePipeline(intel_cpu(), seed=0)
    stopper = _StopAfter(2)
    policy.tune(
        TuningOptions(num_measure_trials=64, num_measures_per_round=8),
        measurer,
        [stopper],
    )
    assert policy.num_trials == 8
    assert measurer.measure_count == 8


def test_stream_stop_in_scheduler_exhausts_only_that_task(intel_hardware):
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a"),
        SearchTask(make_matmul_relu_dag(96, 96, 96), intel_hardware, desc="b"),
    ]

    class StopTaskA(MeasureCallback):
        def on_result(self, event):
            if event.task.desc == "a":
                raise StopTuning("a is done")

    scheduler = TaskScheduler(tasks, seed=0)
    scheduler.tune(
        48, num_measures_per_round=8, async_measure=True, callbacks=[StopTaskA()]
    )
    assert scheduler.exhausted[0]
    # task b kept tuning after a stopped
    assert scheduler.allocations[1] >= scheduler.allocations[0]
    assert not scheduler.exhausted[1] or scheduler.total_trials >= 48


def test_pipelined_tune_resumes_a_reused_policy(task):
    """Async budgets count from the policy's existing num_trials like the
    sync loop: re-tuning with an equal budget adds nothing, a larger budget
    adds only the difference."""
    policy = SketchPolicy(task, seed=0)
    measurer = MeasurePipeline(intel_cpu(), seed=0, async_measure=True)
    options = TuningOptions(num_measure_trials=16, num_measures_per_round=8)
    policy.tune(options, measurer)
    assert policy.num_trials == 16
    policy.tune(options, measurer)  # same budget: already consumed
    assert policy.num_trials == 16
    policy.tune(
        TuningOptions(num_measure_trials=24, num_measures_per_round=8), measurer
    )
    assert policy.num_trials == 24


def test_future_result_timeout_holds_under_unrelated_completions(task, inputs):
    """result(timeout=...) uses a monotonic deadline: completions of OTHER
    futures wake the condition but must not restart the clock."""
    pipeline = MeasurePipeline(
        intel_cpu(), builder=LocalBuilder(build_latency_sec=0.2), seed=0
    )
    with pipeline.session(async_=True, n_workers=1) as session:
        futures = session.submit(inputs[:3])
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            futures[-1].result(timeout=0.05)
        assert time.monotonic() - start < 0.2  # did not wait for the queue


def test_abandoned_as_completed_leaves_unyielded_futures_sweepable(task, inputs):
    """Breaking out of as_completed mid-stream must not mark the unyielded
    remainder collected: a later drain still returns those results."""
    pipeline = MeasurePipeline(intel_cpu(), seed=0)
    with pipeline.session(async_=True, n_workers=2) as session:
        futures = session.submit(inputs)
        for fut in session.as_completed(futures):
            break  # consumer bails after the first result
        rest = session.drain()
    assert len(rest) == len(inputs) - 1
    assert pipeline.measure_count == len(inputs)
