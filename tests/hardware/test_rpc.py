"""Tests for the remote ("rpc") measurement backend and the retry policy.

Covers the acceptance surface of the backend: single-device bit parity with
the local runner, process-pool build parity with the thread builder, device
dispatch and per-device fault profiles, retry-on-transient-fault semantics
end to end (a retry session recovers programs a no-retry session loses,
retries never train the cost model twice), and the options plumbing
(``TuningOptions(builder="rpc", runner="rpc", n_retry=..., devices=...)``
driving full ``Tuner`` sessions with no consumer code changes).
"""

import math
import pickle

import numpy as np
import pytest

from repro import Tuner, TuningOptions
from repro.cost_model import LearnedCostModel
from repro.hardware import (
    DeviceProfile,
    LocalBuilder,
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    RandomFaults,
    RpcBuilder,
    RpcRunner,
    intel_cpu,
    resolve_builder,
    resolve_runner,
)
from repro.search import generate_sketches, sample_initial_population
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="matmul+relu")


@pytest.fixture
def states(task, rng):
    sketches = generate_sketches(task)
    return sample_initial_population(task, sketches, 8, rng)


@pytest.fixture
def inputs(task, states):
    return [MeasureInput(task, s) for s in states]


def _incomplete_state(task):
    state = task.compute_dag.init_state()
    state.split("C", 0, [None])
    return state


# ---------------------------------------------------------------------------
# DeviceProfile and device-list normalization
# ---------------------------------------------------------------------------


def test_device_profile_validation():
    with pytest.raises(ValueError, match="name"):
        DeviceProfile("")
    with pytest.raises(ValueError, match="run_error_prob"):
        DeviceProfile("a", run_error_prob=1.5)
    with pytest.raises(ValueError, match="slowdown"):
        DeviceProfile("a", slowdown=0.0)
    with pytest.raises(ValueError, match="queue_latency_sec"):
        DeviceProfile("a", queue_latency_sec=-1.0)


def test_device_list_normalization():
    runner = RpcRunner(intel_cpu(), devices=3)
    assert [d.name for d in runner.devices] == ["dev0", "dev1", "dev2"]
    runner = RpcRunner(
        intel_cpu(),
        devices=["a", {"name": "b", "run_error_prob": 0.5}, DeviceProfile("c")],
    )
    assert [d.name for d in runner.devices] == ["a", "b", "c"]
    assert runner.devices[1].run_error_prob == 0.5
    with pytest.raises(ValueError, match="duplicate"):
        RpcRunner(intel_cpu(), devices=["a", "a"])
    with pytest.raises(ValueError, match="at least one"):
        RpcRunner(intel_cpu(), devices=[])
    with pytest.raises(TypeError, match="DeviceProfile"):
        RpcRunner(intel_cpu(), devices=[42])
    with pytest.raises(ValueError, match="dispatch"):
        RpcRunner(intel_cpu(), dispatch="random")


def test_rpc_registered():
    assert resolve_builder("rpc") is RpcBuilder
    assert resolve_runner("rpc") is RpcRunner


# ---------------------------------------------------------------------------
# Bit parity with the local backend (the acceptance gate)
# ---------------------------------------------------------------------------


def test_single_device_rpc_runner_is_bit_identical_to_local(task, inputs):
    """A default single-device profile must reproduce the local runner bit
    for bit: same hash-seeded noise, same simulator, same error strings."""
    local = MeasurePipeline(intel_cpu(), seed=7)
    rpc = MeasurePipeline(intel_cpu(), runner=RpcRunner(intel_cpu(), seed=7))
    batch = inputs + [MeasureInput(task, _incomplete_state(task))]
    for a, b in zip(local.measure(batch), rpc.measure(batch)):
        assert a.costs == b.costs
        assert a.error == b.error
        assert a.error_no == b.error_no
    assert local.best_cost == rpc.best_cost


def test_rpc_builder_is_bit_identical_to_thread_builder(task, inputs):
    """Process-pool builds lower in worker processes but must produce the
    same programs (and therefore costs) as the local builder."""
    local = MeasurePipeline(intel_cpu(), seed=7)
    rpc = MeasurePipeline(intel_cpu(), builder=RpcBuilder(n_parallel=4), seed=7)
    try:
        batch = inputs + [MeasureInput(task, _incomplete_state(task))]
        for a, b in zip(local.measure(batch), rpc.measure(batch)):
            assert a.costs == b.costs
            assert a.error == b.error
    finally:
        rpc.builder.close()


def test_options_driven_rpc_session_matches_local(task):
    """The acceptance criterion: switching builder/runner to "rpc" through
    TuningOptions drives an unchanged Tuner session to identical results."""
    base = dict(num_measure_trials=16, num_measures_per_round=8, seed=0)
    local = Tuner(task, policy="random", options=TuningOptions(**base)).tune()
    rpc = Tuner(
        task,
        policy="random",
        options=TuningOptions(builder="rpc", runner="rpc", n_parallel=4, n_retry=2, **base),
    ).tune()
    assert rpc.best_cost == local.best_cost
    assert rpc.num_trials == local.num_trials == 16
    assert rpc.history == local.history


# ---------------------------------------------------------------------------
# Device dispatch
# ---------------------------------------------------------------------------


def test_round_robin_spreads_runs_across_devices(inputs):
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(inputs)
    stats = runner.device_stats()
    assert stats["a"]["runs"] == stats["b"]["runs"] == len(inputs) / 2


def test_failed_builds_never_reach_a_device(task, inputs):
    runner = RpcRunner(intel_cpu(), devices=["a", "b"], seed=0)
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure([MeasureInput(task, _incomplete_state(task))])
    stats = runner.device_stats()
    assert stats["a"]["runs"] == 0 and stats["b"]["runs"] == 0


def test_least_loaded_still_charges_faulted_runs(inputs):
    """A permanently failing board must not look 'free' to least-loaded
    dispatch: faulted runs are charged their estimated occupation, so the
    healthy device keeps receiving work and retries can recover there."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("bad", run_error_prob=1.0), DeviceProfile("ok")],
        dispatch="least-loaded",
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=3)
    results = pipeline.measure(inputs)
    stats = runner.device_stats()
    assert stats["ok"]["runs"] > 0
    assert stats["bad"]["busy_sec"] > 0  # faulted runs occupied the board
    assert all(r.valid for r in results)  # every trial recovered on "ok"


def test_least_loaded_prefers_the_fast_device(inputs):
    """With one device 10x slower, least-loaded dispatch should route most
    runs to the fast device (its simulated busy time stays lower)."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("fast"), DeviceProfile("slow", slowdown=10.0)],
        dispatch="least-loaded",
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    pipeline.measure(inputs)
    stats = runner.device_stats()
    assert stats["fast"]["runs"] > stats["slow"]["runs"]


def test_slowdown_scales_costs(task):
    state = task.compute_dag.init_state()
    fast = MeasurePipeline(intel_cpu(), runner=RpcRunner(intel_cpu(), seed=0))
    slow = MeasurePipeline(
        intel_cpu(),
        runner=RpcRunner(intel_cpu(), devices=[DeviceProfile("s", slowdown=2.0)], seed=0),
    )
    fast_res = fast.measure_one(MeasureInput(task, state))
    slow_res = slow.measure_one(MeasureInput(task, state))
    assert slow_res.costs == pytest.approx([2.0 * c for c in fast_res.costs])


def test_queue_latency_is_charged(task):
    state = task.compute_dag.init_state()
    runner = RpcRunner(
        intel_cpu(), devices=[DeviceProfile("q", queue_latency_sec=1.5)], seed=0
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    result = pipeline.measure_one(MeasureInput(task, state))
    assert result.valid
    assert result.elapsed_sec >= 1.5
    assert runner.device_stats()["q"]["busy_sec"] >= 1.5


def test_per_device_fault_profiles_are_independent(inputs):
    """A faulty board fails; its healthy neighbour keeps measuring — the
    fleet's behaviour is modeled per device, not averaged away."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("ok"), DeviceProfile("bad", run_error_prob=1.0)],
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner)
    results = pipeline.measure(inputs)
    stats = runner.device_stats()
    assert stats["ok"]["errors"] == 0
    assert stats["bad"]["errors"] == stats["bad"]["runs"] > 0
    bad = [r for r in results if not r.valid]
    assert all(r.error_kind == MeasureErrorNo.RUN_ERROR for r in bad)


def test_device_faults_are_deterministic(task, states):
    def run():
        runner = RpcRunner(
            intel_cpu(),
            devices=[DeviceProfile("a", run_error_prob=0.5), DeviceProfile("b")],
            seed=11,
        )
        pipeline = MeasurePipeline(intel_cpu(), runner=runner)
        results = pipeline.measure([MeasureInput(task, s) for s in states])
        return [(r.error_no, tuple(r.costs)) for r in results]

    assert run() == run()


# ---------------------------------------------------------------------------
# Retry-on-transient-fault, end to end
# ---------------------------------------------------------------------------


def test_retry_recovers_programs_a_no_retry_session_loses(task, inputs):
    """The documented RUN_ERROR semantics: retrying the same program can
    succeed.  With retries on, a fault-injected session recovers every
    program the fail-fast session lost (at this fault rate)."""
    no_retry = MeasurePipeline(
        intel_cpu(), fault_model=RandomFaults(run_error_prob=0.6, seed=3), seed=0
    )
    with_retry = MeasurePipeline(
        intel_cpu(),
        fault_model=RandomFaults(run_error_prob=0.6, seed=3),
        seed=0,
        n_retry=5,
    )
    lost = [r for r in no_retry.measure(inputs) if not r.valid]
    recovered = with_retry.measure(inputs)
    assert lost  # the fault rate actually bites
    assert all(r.valid for r in recovered)
    assert any(r.retry_count > 0 for r in recovered)
    # Recovered costs equal the no-fault costs: a transient fault perturbs
    # availability, not the timing of the eventually-successful run.
    clean = MeasurePipeline(intel_cpu(), seed=0).measure(inputs)
    assert [r.costs for r in recovered] == [r.costs for r in clean]


def test_retry_only_applies_to_run_errors(task, inputs):
    """BUILD_ERROR and RUN_TIMEOUT are not transient: retries must not
    re-run them (same draw would repeat — wasted budget)."""
    pipeline = MeasurePipeline(
        intel_cpu(),
        fault_model=RandomFaults(build_error_prob=1.0, seed=0),
        seed=0,
        n_retry=3,
    )
    results = pipeline.measure(inputs)
    assert all(r.error_kind == MeasureErrorNo.BUILD_ERROR for r in results)
    assert all(r.retry_count == 0 for r in results)


def test_retries_never_train_the_cost_model_twice(task, inputs):
    """A retried trial is one trial: the measured batch has one result per
    input, so the cost model sees each recovered program exactly once."""
    pipeline = MeasurePipeline(
        intel_cpu(),
        fault_model=RandomFaults(run_error_prob=0.6, seed=3),
        seed=0,
        n_retry=5,
    )
    results = pipeline.measure(inputs)
    assert len(results) == len(inputs)
    assert sum(r.retry_count for r in results) > 0
    model = LearnedCostModel(seed=0)
    model.update(inputs, results)
    assert model.num_samples == sum(1 for r in results if r.valid)


def test_retry_lands_on_another_device(inputs):
    """Round-robin advances on retry, so a transient fault on one board is
    re-dispatched and can recover on its healthy neighbour — even when one
    device *always* fails transiently, enough retries drain every trial
    through the good board."""
    runner = RpcRunner(
        intel_cpu(),
        devices=[DeviceProfile("flaky", run_error_prob=1.0), DeviceProfile("ok")],
        seed=0,
    )
    pipeline = MeasurePipeline(intel_cpu(), runner=runner, n_retry=4)
    results = pipeline.measure(inputs)
    assert all(r.valid for r in results)  # every flaky run recovered on "ok"
    stats = runner.device_stats()
    assert stats["flaky"]["errors"] > 0
    assert stats["ok"]["errors"] == 0


def test_retry_session_through_tuner(task):
    """A ready retrying pipeline drives a full session: tuning completes its
    budget and reports retries in the pipeline counters.  (The retry knob
    lives on the measurer alone — duplicating it in TuningOptions alongside
    measurer= now raises, see test_tuner.py.)"""
    options = TuningOptions(num_measure_trials=16, num_measures_per_round=8, seed=0)
    measurer = MeasurePipeline(
        intel_cpu(),
        fault_model=RandomFaults(run_error_prob=0.4, seed=5),
        seed=0,
        n_retry=3,
    )
    result = Tuner(task, policy="random", options=options, measurer=measurer).tune()
    assert result.num_trials == 16
    assert math.isfinite(result.best_cost)
    assert measurer.retry_count > 0
    assert measurer.error_counts.get(MeasureErrorNo.RUN_ERROR, 0) == result.num_errors


# ---------------------------------------------------------------------------
# RpcBuilder process-pool mechanics
# ---------------------------------------------------------------------------


def test_rpc_builder_injects_faults_in_workers(task, inputs):
    """The fault model travels to the worker processes (the builder is
    pickled), so injected build failures classify identically."""
    builder = RpcBuilder(n_parallel=2, fault_model=RandomFaults(build_error_prob=1.0, seed=0))
    pipeline = MeasurePipeline(intel_cpu(), builder=builder)
    try:
        results = pipeline.measure(inputs)
        assert all(r.error_kind == MeasureErrorNo.BUILD_ERROR for r in results)
    finally:
        builder.close()


def test_rpc_builder_serial_path_needs_no_pool(task, inputs):
    builder = RpcBuilder(n_parallel=1)
    results = builder.build(inputs[:2])
    assert all(r.ok for r in results)
    assert not builder._pool.active


def test_rpc_builder_pickles_without_pool_handle(inputs):
    builder = RpcBuilder(n_parallel=2)
    try:
        builder.build(inputs[:3])  # forces pool creation
        assert builder._pool.active
        clone = pickle.loads(pickle.dumps(builder))
        assert not clone._pool.active
        assert clone.n_parallel == 2
    finally:
        builder.close()


def test_rpc_builder_close_is_idempotent():
    builder = RpcBuilder(n_parallel=2)
    builder.close()
    builder.close()
    assert builder.build([]) == []


def test_rpc_builder_timeout_semantics(task, inputs):
    """The per-candidate bound inherited from LocalBuilder: emulated compile
    latency above the timeout flags every candidate, measured in-worker."""
    builder = RpcBuilder(n_parallel=2, timeout=0.01, build_latency_sec=0.05)
    try:
        results = builder.build(inputs[:3])
        assert all(r.error_no == MeasureErrorNo.BUILD_TIMEOUT for r in results)
    finally:
        builder.close()


# ---------------------------------------------------------------------------
# Options plumbing: the devices knob and network sessions
# ---------------------------------------------------------------------------


def test_from_options_builds_rpc_stack():
    options = TuningOptions(
        builder="rpc", runner="rpc", n_parallel=4, n_retry=2,
        devices=[DeviceProfile("a"), DeviceProfile("b", slowdown=2.0)], seed=9,
    )
    pipeline = MeasurePipeline.from_options(intel_cpu(), options)
    assert isinstance(pipeline.builder, RpcBuilder)
    assert pipeline.builder.n_parallel == 4
    assert isinstance(pipeline.runner, RpcRunner)
    assert [d.name for d in pipeline.runner.devices] == ["a", "b"]
    assert pipeline.n_retry == 2
    assert pipeline.seed == 9


def test_devices_rejected_for_device_blind_runner():
    with pytest.raises(ValueError, match="device-aware"):
        MeasurePipeline.from_options(intel_cpu(), TuningOptions(runner="local", devices=2))


def test_malformed_device_entry_surfaces_the_real_error():
    """A bad device entry must raise as itself, not as a misleading
    'runner is device-blind' complaint about the runner the user picked."""
    with pytest.raises(TypeError, match="DeviceProfile"):
        MeasurePipeline.from_options(
            intel_cpu(), TuningOptions(runner="rpc", devices=[42])
        )
    with pytest.raises(TypeError, match="capacity"):
        MeasurePipeline.from_options(
            intel_cpu(), TuningOptions(runner="rpc", devices=[{"name": "a", "capacity": 3}])
        )


def test_devices_rejected_with_ready_runner_instance():
    options = TuningOptions(runner=RpcRunner(intel_cpu()), devices=2)
    with pytest.raises(ValueError, match="devices"):
        MeasurePipeline.from_options(intel_cpu(), options)


def test_options_validate_n_retry():
    with pytest.raises(ValueError, match="n_retry"):
        TuningOptions(n_retry=-1)


@pytest.mark.slow
def test_network_session_on_rpc_backend():
    """The acceptance criterion's network half: an rpc-backed multi-task
    session runs through the scheduler with no consumer code changes."""
    options = TuningOptions(
        num_measure_trials=12, num_measures_per_round=4,
        builder="rpc", runner="rpc", n_parallel=2, n_retry=1,
        devices=["board0", "board1"], seed=0,
    )
    result = Tuner(["dcgan"], policy="random", options=options,
                   max_tasks_per_network=2).tune()
    assert result.num_trials == 12
    assert result.network_latencies["dcgan"] > 0
    for measurer in result.scheduler.measurers:
        assert isinstance(measurer.runner, RpcRunner)
        assert measurer.n_retry == 1
