"""Tests for the NumPy reference executor: functional correctness of DAGs."""

import numpy as np
import pytest

from repro import te
from repro.codegen import Executor, execute_dag
from repro.te.dag import ComputeDAG
from repro.workloads.ops import conv1d, conv2d, depthwise_conv2d, matmul, matrix_norm, transposed_conv2d


def test_matmul_matches_numpy():
    dag = matmul(8, 6, 10)
    a = np.random.randn(8, 10)
    b = np.random.randn(10, 6)
    out = execute_dag(dag, {"A": a, "B": b})["C"]
    np.testing.assert_allclose(out, a @ b, rtol=1e-10)


def test_matmul_relu_fused_graph():
    A = te.placeholder((4, 4), name="A")
    B = te.placeholder((4, 4), name="B")
    k = te.reduce_axis(4, "k")
    C = te.compute((4, 4), lambda i, j: te.sum_expr(A[i, k] * B[k, j], [k]), name="C")
    D = te.compute((4, 4), lambda i, j: te.Max(C[i, j], te.const(0.0)), name="D")
    dag = ComputeDAG([D])
    a, b = np.random.randn(4, 4), np.random.randn(4, 4)
    outputs = execute_dag(dag, {"A": a, "B": b})
    np.testing.assert_allclose(outputs["D"], np.maximum(a @ b, 0), rtol=1e-10)
    # intermediates are also returned
    np.testing.assert_allclose(outputs["C"], a @ b, rtol=1e-10)


def test_elementwise_math_intrinsics():
    A = te.placeholder((3, 3), name="A")
    B = te.compute((3, 3), lambda i, j: te.Call("exp", [A[i, j]]), name="B")
    dag = ComputeDAG([B])
    a = np.random.randn(3, 3)
    out = execute_dag(dag, {"A": a})["B"]
    np.testing.assert_allclose(out, np.exp(a), rtol=1e-10)


def test_select_condition():
    A = te.placeholder((4,), name="A")
    B = te.compute((4,), lambda i: te.Select(A[i] > 0.0, A[i], 0.0), name="B")
    a = np.array([-1.0, 2.0, -3.0, 4.0])
    out = execute_dag(ComputeDAG([B]), {"A": a})["B"]
    np.testing.assert_allclose(out, np.maximum(a, 0))


def test_max_reduction():
    A = te.placeholder((4, 8), name="A")
    k = te.reduce_axis(8, "k")
    B = te.compute((4,), lambda i: te.max_expr(A[i, k], [k]), name="B")
    a = np.random.randn(4, 8)
    out = execute_dag(ComputeDAG([B]), {"A": a})["B"]
    np.testing.assert_allclose(out, a.max(axis=1), rtol=1e-10)


def test_conv1d_matches_manual_reference():
    dag = conv1d(1, 2, 8, 3, 3, 1, 1)
    data = np.random.randn(1, 2, 8)
    weight = np.random.randn(3, 2, 3)
    out = execute_dag(dag, {"data": data, "weight": weight})["conv1d"]
    padded = np.zeros((1, 2, 10))
    padded[:, :, 1:9] = data
    ref = np.zeros((1, 3, 8))
    for co in range(3):
        for l in range(8):
            ref[0, co, l] = np.sum(padded[0, :, l:l + 3] * weight[co])
    np.testing.assert_allclose(out, ref, rtol=1e-10)


def test_conv2d_matches_manual_reference():
    dag = conv2d(1, 2, 5, 5, 3, 3, 1, 1)
    data = np.random.randn(1, 2, 5, 5)
    weight = np.random.randn(3, 2, 3, 3)
    out = execute_dag(dag, {"data": data, "weight": weight})["conv2d"]
    padded = np.zeros((1, 2, 7, 7))
    padded[:, :, 1:6, 1:6] = data
    ref = np.zeros((1, 3, 5, 5))
    for co in range(3):
        for h in range(5):
            for w in range(5):
                ref[0, co, h, w] = np.sum(padded[0, :, h:h + 3, w:w + 3] * weight[co])
    np.testing.assert_allclose(out, ref, rtol=1e-10)


def test_depthwise_conv2d_reference():
    dag = depthwise_conv2d(1, 3, 5, 5, 3, 1, 1)
    data = np.random.randn(1, 3, 5, 5)
    weight = np.random.randn(3, 1, 3, 3)
    out = execute_dag(dag, {"data": data, "weight": weight})["depthwise_conv2d"]
    padded = np.zeros((1, 3, 7, 7))
    padded[:, :, 1:6, 1:6] = data
    ref = np.zeros((1, 3, 5, 5))
    for c in range(3):
        for h in range(5):
            for w in range(5):
                ref[0, c, h, w] = np.sum(padded[0, c, h:h + 3, w:w + 3] * weight[c, 0])
    np.testing.assert_allclose(out, ref, rtol=1e-10)


def test_transposed_conv2d_shape_and_total():
    dag = transposed_conv2d(1, 2, 4, 4, 3, 4, 2, 1)
    data = np.random.randn(1, 2, 4, 4)
    weight = np.random.randn(2, 3, 4, 4)
    out = execute_dag(dag, {"data": data, "weight": weight})["transposed_conv2d"]
    assert out.shape == (1, 3, 8, 8)
    # The sum over the output equals the input-weight interaction summed the
    # same number of times regardless of zero insertion positions.
    assert np.isfinite(out).all()


def test_matrix_norm_matches_numpy():
    dag = matrix_norm(2, 6, 7)
    a = np.random.randn(2, 6, 7)
    out = execute_dag(dag, {"A": a})["norm"]
    np.testing.assert_allclose(out, np.linalg.norm(a.reshape(2, -1), axis=1), rtol=1e-10)


def test_missing_input_raises():
    dag = matmul(4, 4, 4)
    with pytest.raises(KeyError):
        execute_dag(dag, {"A": np.zeros((4, 4))})


def test_wrong_shape_raises():
    dag = matmul(4, 4, 4)
    with pytest.raises(ValueError):
        execute_dag(dag, {"A": np.zeros((4, 5)), "B": np.zeros((4, 4))})


def test_out_of_bounds_read_is_zero_padding():
    A = te.placeholder((4,), name="A")
    B = te.compute((4,), lambda i: A[i + 2], name="B")
    a = np.array([1.0, 2.0, 3.0, 4.0])
    out = execute_dag(ComputeDAG([B]), {"A": a})["B"]
    np.testing.assert_allclose(out, [3.0, 4.0, 0.0, 0.0])


def test_executor_reusable():
    dag = matmul(4, 4, 4)
    executor = Executor(dag)
    a, b = np.eye(4), np.ones((4, 4))
    out1 = executor.run({"A": a, "B": b})["C"]
    out2 = executor.run({"A": b, "B": a})["C"]
    np.testing.assert_allclose(out1, b)
    np.testing.assert_allclose(out2, b)
