"""Tests for the lowering pass: loop nests, access analysis and fusion tiles."""

import pytest

from repro.codegen.lowering import linear_coefficients, lower_state
from repro.te.expr import Var

from ..conftest import make_matmul_relu_dag, make_norm_dag


@pytest.fixture
def dag():
    return make_matmul_relu_dag(64, 64, 64)


def test_linear_coefficients_simple_var():
    i = Var("i")
    coeffs, const = linear_coefficients(i)
    assert coeffs == {"i": 1} and const == 0


def test_linear_coefficients_affine():
    i, r = Var("i"), Var("r")
    coeffs, const = linear_coefficients(i * 2 - 3 + r)
    assert coeffs == {"i": 2, "r": 1}
    assert const == -3


def test_linear_coefficients_constant_only():
    coeffs, const = linear_coefficients(Var("i") * 0 + 5)
    assert const == 5


def test_lower_naive_state_has_one_nest_per_compute_stage(dag):
    program = lower_state(dag.init_state())
    assert set(program.nests) == {"C", "D"}
    assert len(program.roots) == 2


def test_nest_iteration_and_flop_counts(dag):
    program = lower_state(dag.init_state())
    c = program.nests["C"]
    assert c.iteration_count() == 64 ** 3
    assert c.total_flops() == 2 * 64 ** 3
    d = program.nests["D"]
    assert d.iteration_count() == 64 * 64


def test_accesses_reads_and_writes(dag):
    program = lower_state(dag.init_state())
    c = program.nests["C"]
    read_buffers = {a.buffer for a in c.reads()}
    write_buffers = {a.buffer for a in c.writes()}
    assert read_buffers == {"A", "B"}
    assert write_buffers == {"C"}


def test_element_strides_of_matmul_reads(dag):
    program = lower_state(dag.init_state())
    c = program.nests["C"]
    a_access = next(a for a in c.reads() if a.buffer == "A")
    b_access = next(a for a in c.reads() if a.buffer == "B")
    # A[i, rk]: stride 64 along i, stride 1 along rk
    strides_a = a_access.element_strides()
    assert strides_a["C_i"] == 64
    assert strides_a["rk"] == 1
    # B[rk, j]: stride 64 along rk, stride 1 along j
    strides_b = b_access.element_strides()
    assert strides_b["rk"] == 64
    assert strides_b["C_j"] == 1


def test_inlined_stage_folds_into_consumer():
    dag = make_matmul_relu_dag(16, 16, 16)
    state = dag.init_state()
    # Inline C into D is not legal (reduction), but inlining D would remove
    # the output; instead build an intermediate elementwise op scenario by
    # inlining nothing and checking inline of an intermediate works at the
    # lowering level using the relu's producer chain.
    state2 = dag.init_state()
    state2.compute_inline("C")  # structurally allowed; lowering folds the reads
    program = lower_state(state2)
    assert "C" not in program.nests
    d = program.nests["D"]
    read_buffers = {a.buffer for a in d.reads()}
    assert {"A", "B"} <= read_buffers


def test_attached_consumer_is_shrunk_to_tile(dag):
    state = dag.init_state()
    state.split("C", 0, [16])  # i -> 4 x 16
    state.split("C", 2, [16])  # j -> 4 x 16
    state.reorder("C", [0, 2, 1, 3, 4])
    state.compute_at("D", "C", 1)
    program = lower_state(state)
    d = program.nests["D"]
    # D covers only the 16x16 tile produced per (i.0, j.0) iteration.
    assert d.iteration_count() == 16 * 16
    assert d.execution_count() == 16
    # outer context is C's two outer loops
    assert [l.extent for l in d.outer_context] == [4, 4]


def test_attached_consumer_execution_conserves_total_work(dag):
    state = dag.init_state()
    state.split("C", 0, [16])
    state.split("C", 2, [16])
    state.reorder("C", [0, 2, 1, 3, 4])
    state.compute_at("D", "C", 1)
    program = lower_state(state)
    d = program.nests["D"]
    assert d.total_iterations() == 64 * 64


def test_cache_write_lowering_keeps_both_stages(dag):
    state = dag.init_state()
    state.cache_write("C")
    program = lower_state(state)
    assert "C.cache" in program.nests
    assert "C" in program.nests
    cache = program.nests["C.cache"]
    assert {a.buffer for a in cache.reads()} == {"A", "B"}
    copy = program.nests["C"]
    assert {a.buffer for a in copy.reads()} == {"C.cache"}


def test_rfactor_lowering_produces_two_stages():
    dag = make_norm_dag()
    state = dag.init_state()
    state.split("S", 1, [16])
    state.rfactor("S", 2)
    program = lower_state(state)
    assert "S.rf" in program.nests
    rf = program.nests["S.rf"]
    final = program.nests["S"]
    assert rf.iteration_count() > final.iteration_count()


def test_total_flops_of_program(dag):
    program = lower_state(dag.init_state())
    assert program.total_flops() == pytest.approx(2 * 64 ** 3 + 64 * 64)
