"""Property-based tests (hypothesis) on core invariants.

The invariants checked here are the ones the whole search relies on:

* split factorizations always preserve the iteration space,
* random annotation always produces valid, measurable programs,
* schedule transformations never change which buffers a program reads or
  writes,
* tile-size mutation preserves the iteration space,
* the GBDT handles arbitrary regression data without crashing and predicts
  finite values.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import te
from repro.codegen.lowering import lower_state
from repro.cost_model.features import extract_program_features
from repro.cost_model.gbdt import GBDTRegressor
from repro.hardware import CostSimulator, intel_cpu
from repro.search import (
    generate_sketches,
    mutate_tile_size,
    random_factor_split,
    sample_complete_program,
)
from repro.task import SearchTask
from repro.te.dag import ComputeDAG


def _matmul_relu(m, n, k):
    A = te.placeholder((m, k), name="A")
    B = te.placeholder((k, n), name="B")
    rk = te.reduce_axis(k, "rk")
    C = te.compute((m, n), lambda i, j: te.sum_expr(A[i, rk] * B[rk, j], [rk]), name="C")
    D = te.compute((m, n), lambda i, j: te.Max(C[i, j], te.const(0.0)), name="D")
    return ComputeDAG([D])


_SIZES = st.sampled_from([8, 12, 16, 24, 32, 48, 64, 96, 128])


@given(extent=st.integers(min_value=1, max_value=1024), n_inner=st.integers(1, 4), seed=st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_random_factor_split_always_divides(extent, n_inner, seed):
    rng = np.random.default_rng(seed)
    lengths = random_factor_split(extent, n_inner, rng)
    assert len(lengths) == n_inner
    product = int(np.prod(lengths))
    assert product >= 1
    assert extent % product == 0


@given(m=_SIZES, n=_SIZES, k=_SIZES, seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sampled_programs_preserve_iteration_space(m, n, k, seed):
    dag = _matmul_relu(m, n, k)
    task = SearchTask(dag, intel_cpu())
    rng = np.random.default_rng(seed)
    sketches = generate_sketches(task)
    state = sample_complete_program(task, sketches, rng)
    # The stage holding the matmul computation covers exactly m*n*k points.
    # Which stage that is depends on the sampled structure: a cache stage
    # (C.cache) or an rfactor stage (C.rf) takes over the heavy loop nest,
    # leaving the original stage with only the residual reduction.
    matmul_stages = [s for s in state.stages if s.name == "C" or s.name.startswith("C.")]
    assert max(s.iteration_count() for s in matmul_stages) == m * n * k
    # And the program is simulatable with a positive finite cost.
    cost = CostSimulator(task.hardware_params).estimate(state)
    assert np.isfinite(cost) and cost > 0


@given(m=_SIZES, n=_SIZES, k=_SIZES, seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_schedules_never_change_buffer_set(m, n, k, seed):
    dag = _matmul_relu(m, n, k)
    task = SearchTask(dag, intel_cpu())
    rng = np.random.default_rng(seed)
    sketches = generate_sketches(task)
    state = sample_complete_program(task, sketches, rng)
    program = lower_state(state)
    read = {a.buffer for nest in program.all_nests() for a in nest.reads()}
    written = {a.buffer for nest in program.all_nests() for a in nest.writes()}
    # Whatever the schedule, the program must read the placeholders and write
    # the DAG output; any extra buffers must be schedule-introduced caches.
    assert {"A", "B"} <= read
    assert "D" in written
    for extra in written - {"C", "D"}:
        assert extra.endswith(".cache") or extra.endswith(".rf")


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_tile_mutation_preserves_iteration_space(seed):
    dag = _matmul_relu(64, 64, 64)
    task = SearchTask(dag, intel_cpu())
    rng = np.random.default_rng(seed)
    sketches = generate_sketches(task)
    parent = sample_complete_program(task, sketches, rng)
    child = mutate_tile_size(parent, rng)
    if child is None:
        return
    name = "C.cache" if child.has_stage("C.cache") else "C"
    assert child.stage(name).iteration_count() == 64 ** 3


@given(seed=st.integers(0, 200))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_feature_extraction_always_finite(seed):
    dag = _matmul_relu(32, 32, 32)
    task = SearchTask(dag, intel_cpu())
    rng = np.random.default_rng(seed)
    sketches = generate_sketches(task)
    state = sample_complete_program(task, sketches, rng)
    features = extract_program_features(state)
    assert features.shape[0] >= 1
    assert np.isfinite(features).all()


@given(
    n_samples=st.integers(10, 60),
    n_features=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_gbdt_never_produces_nan(n_samples, n_features, seed):
    rng = np.random.default_rng(seed)
    X = rng.random((n_samples, n_features))
    y = rng.standard_normal(n_samples)
    w = rng.random(n_samples) + 0.01
    model = GBDTRegressor(n_rounds=5, max_depth=3, seed=seed).fit(X, y, sample_weight=w)
    pred = model.predict(rng.random((20, n_features)))
    assert np.isfinite(pred).all()
