"""End-to-end integration tests spanning all components."""

import math

import numpy as np
import pytest

from repro import (
    SearchTask,
    TuningOptions,
    auto_schedule,
    auto_schedule_networks,
    intel_cpu,
    nvidia_gpu,
)
from repro.hardware import CostSimulator, ProgramMeasurer
from repro.records import load_records, apply_history_best, save_records
from repro.scheduler import TaskScheduler
from repro.search import LibraryBaseline, SketchPolicy, limited_space_policy, random_search_policy
from repro.workloads import conv_layer, make_op_dag, single_op_shape_configs

from ..conftest import make_matmul_relu_dag

pytestmark = pytest.mark.slow


def test_full_flow_single_operator_cpu(tmp_path):
    """Tune one conv2d, log it, re-apply the best record and verify the cost."""
    config = dict(in_channels=32, height=28, width=28, out_channels=32, kernel=3, stride=1, padding=1)
    task = SearchTask(make_op_dag("C2D", config, batch=1), intel_cpu(), desc="c2d-28")
    log = tmp_path / "c2d.json"
    state, cost = auto_schedule(
        task,
        TuningOptions(num_measure_trials=32, num_measures_per_round=8, seed=0),
        log_file=str(log),
    )
    # The search happened and logged every trial.
    assert len(load_records(log)) == 32
    # The best recorded program is re-buildable and matches the claimed cost.
    replayed = apply_history_best(task, log)
    assert replayed is not None
    sim_cost = CostSimulator(task.hardware_params).estimate(replayed)
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    assert sim_cost < naive / 3


def test_ansor_approaches_library_on_conv_layer_with_small_budget():
    """§7.2-style comparison on a ConvLayer subgraph.

    At the test-sized budget (64 trials instead of the paper's 1000) the
    tuned program must land within a small factor of the fixed expert
    schedule and far ahead of the naive program; the full-budget comparison
    is part of the benchmark harness (Figure 8).
    """
    dag = conv_layer(1, 64, 28, 28, 64, 3, 1, 1)
    task = SearchTask(dag, intel_cpu(), desc="convlayer")
    library = LibraryBaseline(task)
    library.run()
    policy = SketchPolicy(task, seed=0, population_size=32, num_generations=3, sample_init_population=32)
    policy.tune(TuningOptions(num_measure_trials=64, num_measures_per_round=16),
                ProgramMeasurer(task.hardware_params, seed=0))
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    assert policy.best_cost < naive / 10
    assert policy.best_cost <= library.best_cost * 4.0


def test_gpu_target_end_to_end():
    task = SearchTask(make_matmul_relu_dag(256, 256, 256), nvidia_gpu(), desc="mm-gpu")
    state, cost = auto_schedule(task, TuningOptions(num_measure_trials=24, num_measures_per_round=8))
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    assert cost < naive / 10


def test_task_scheduler_network_flow_produces_schedules():
    result = auto_schedule_networks(
        ["mobilenet-v2"],
        batch=1,
        num_measure_trials=40,
        num_measures_per_round=8,
        max_tasks_per_network=4,
        seed=1,
    )
    scheduler: TaskScheduler = result["scheduler"]
    assert scheduler.total_trials >= 40
    assert all(a >= 1 for a in scheduler.allocations)
    assert all(math.isfinite(c) for c in scheduler.best_costs)
    # every task obtained a concrete best program
    assert all(s is not None and s.is_concrete() for s in scheduler.best_states())


def test_ablation_ordering_on_matmul():
    """Figure-7-shaped sanity check at a small budget: full Ansor must not be
    worse than pure random sampling, and all variants must beat naive."""
    task = SearchTask(make_matmul_relu_dag(256, 256, 256), intel_cpu())
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    budget = TuningOptions(num_measure_trials=48, num_measures_per_round=12)

    results = {}
    for name, factory in [
        ("ansor", lambda: SketchPolicy(task, seed=2, population_size=32, num_generations=3)),
        ("random", lambda: random_search_policy(task, seed=2)),
        ("limited", lambda: limited_space_policy(task, seed=2, population_size=32, num_generations=3)),
    ]:
        policy = factory()
        policy.tune(budget, ProgramMeasurer(task.hardware_params, seed=2))
        results[name] = policy.best_cost

    assert all(cost < naive for cost in results.values())
    assert results["ansor"] <= results["random"] * 1.1
