"""Tests for the persistent schedule store and its consumer paths.

Covers the storage layer (round-trip, legacy ingest, best-wins, compaction,
file-locked concurrent sessions), the instant-lookup path through
:class:`repro.Tuner`, the cross-session warm-start of
:class:`repro.SketchPolicy`, and the multi-request
:class:`repro.TuningService` front-end.
"""

import json
import threading

import pytest

from repro import (
    RecordToFile,
    ScheduleStore,
    SearchTask,
    StoreWriter,
    Tuner,
    TuningOptions,
    TuningService,
    apply_history_best,
    intel_cpu,
    load_records,
    save_records,
    split_workload_key,
)
from repro.hardware import MeasureInput, arm_cpu
from repro.records import RecordLogWarning, TuningRecord, best_record
from repro.search import generate_sketches, sample_initial_population
from repro.search.sketch_policy import SketchPolicy

from .conftest import make_matmul_dag, make_matmul_relu_dag

SMALL = TuningOptions(num_measure_trials=16, num_measures_per_round=8, verbose=0)


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(32, 32, 32), intel_cpu(), desc="mmrelu32")


@pytest.fixture
def measured(task, rng, measurer):
    sketches = generate_sketches(task)
    states = sample_initial_population(task, sketches, 6, rng)
    inputs = [MeasureInput(task, s) for s in states]
    results = measurer.measure(inputs)
    return inputs, results


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


def test_workload_key_splits_into_fingerprint_and_target(task):
    fingerprint, target = split_workload_key(task.workload_key)
    assert fingerprint == task.workload_fingerprint
    assert target == task.target_name == task.hardware_params.name
    assert task.workload_key == f"{fingerprint}@{target}"
    # target-free keys (legacy logs) split into an empty target half
    assert split_workload_key(fingerprint) == (fingerprint, "")


def test_fingerprint_is_target_free_and_key_is_not(task):
    same_dag_other_hw = SearchTask(make_matmul_relu_dag(32, 32, 32), arm_cpu())
    assert same_dag_other_hw.workload_fingerprint == task.workload_fingerprint
    assert same_dag_other_hw.workload_key != task.workload_key


def test_put_and_lookup_in_memory(task, measured):
    inputs, results = measured
    store = ScheduleStore()
    for inp, res in zip(inputs, results):
        store.put(inp, res)
    entry = store.lookup(task)
    assert entry is not None
    best = min(r.min_cost for r in results if r.valid)
    assert entry.best_cost == pytest.approx(best)
    assert task in store
    assert (task.workload_fingerprint, task.target_name) in store
    assert len(store) == 1


def test_best_wins_only_strict_improvements_are_appended(tmp_path, task, measured):
    inputs, results = measured
    store = ScheduleStore(tmp_path / "store.jsonl")
    ordered = sorted(
        (p for p in zip(inputs, results) if p[1].valid),
        key=lambda p: p[1].min_cost,
    )
    # offer worst-to-best: every offer improves, so every offer appends
    for inp, res in reversed(ordered):
        assert store.put(inp, res)
    assert store.segment_lines == len(ordered)
    # offering the same measurements again changes nothing (ties keep the
    # incumbent; only strictly better costs supersede)
    for inp, res in ordered:
        assert not store.put(inp, res)
    assert store.segment_lines == len(ordered)
    assert len(store) == 1


def test_reopen_rebuilds_identical_index(tmp_path, task, measured):
    inputs, results = measured
    path = tmp_path / "store.jsonl"
    store = ScheduleStore(path)
    for inp, res in zip(inputs, results):
        store.put(inp, res)
    reopened = ScheduleStore(path)
    assert reopened.keys() == store.keys()
    before = store.lookup(task)
    after = reopened.lookup(task)
    assert after.record.to_json() == before.record.to_json()
    assert after.structure == before.structure == task.structure_key
    assert str(after.to_state(task)) == str(before.to_state(task))


def test_ingest_legacy_log_is_lossless(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)

    store = ScheduleStore(tmp_path / "store.jsonl")
    absorbed = store.ingest(log, task=task)
    assert absorbed >= 1

    # the kept record is the log's own best line, bit for bit
    reference = best_record(log, task.workload_key)
    entry = store.lookup(task)
    assert entry.record.to_json() == reference.to_json()
    # and the replayed state matches the classic deployment path
    replayed = apply_history_best(task, load_records(log))
    assert str(entry.to_state(task)) == str(replayed)
    # ingesting the same log again is a no-op (nothing strictly better)
    assert store.ingest(log) == 0


def test_ingest_without_task_upgrades_structure_on_register(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    store = ScheduleStore(tmp_path / "store.jsonl")
    store.ingest(log)  # no task: structure class unknown
    assert store.lookup(task).structure is None
    assert store.similar_entries(SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu())) == []
    # a live session registering the workload teaches the store its shape
    # class, and the legacy entry joins the similarity index
    store.register_task(task)
    assert store.lookup(task).structure == task.structure_key
    similar = store.similar_entries(SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu()))
    assert [e.key for e in similar] == [store.lookup(task).key]


def test_invalid_records_are_rejected(task):
    store = ScheduleStore()
    record = TuningRecord(
        workload_key=task.workload_key,
        target=task.target_name,
        steps=[],
        costs=[],
        error="build exploded",
    )
    assert not store.put_record(record)
    assert len(store) == 0


def test_malformed_segment_lines_warn_and_are_skipped(tmp_path, task, measured):
    inputs, results = measured
    path = tmp_path / "store.jsonl"
    store = ScheduleStore(path)
    for inp, res in zip(inputs, results):
        store.put(inp, res)
    with open(path, "a") as f:
        f.write("not json at all\n")
    with pytest.warns(RecordLogWarning, match="malformed"):
        reopened = ScheduleStore(path)
    assert reopened.keys() == store.keys()


def test_compact_preserves_bests_bit_for_bit(tmp_path, task, measured):
    inputs, results = measured
    other = SearchTask(make_matmul_dag(32, 32, 32), intel_cpu())
    path = tmp_path / "store.jsonl"
    store = ScheduleStore(path)
    for inp, res in zip(inputs, results):
        store.put(inp, res)
        # a second key so compaction handles a multi-entry index
        store.put(MeasureInput(other, inp.state), res)
    assert store.segment_lines > len(store)

    before_lines = {e.key: e.to_json() for e in store.entries()}
    superseded = store.segment_lines - len(store)
    dropped = store.compact()
    assert dropped == superseded
    assert store.segment_lines == len(store)

    # on-disk: exactly one line per key, and each is the pre-compaction
    # best entry byte for byte
    with open(path) as f:
        lines = [line.strip() for line in f if line.strip()]
    assert len(lines) == len(before_lines)
    for line in lines:
        data = json.loads(line)
        key = (data["fingerprint"], data["target"])
        assert line == before_lines[key]

    # a fresh reader of the compacted file sees the identical index
    reopened = ScheduleStore(path)
    assert {e.key: e.to_json() for e in reopened.entries()} == before_lines
    # compacting a compacted store drops nothing
    assert store.compact() == 0


def test_concurrent_sessions_interleave_under_file_lock(tmp_path, task, measured):
    """Two store objects on the same path (two "sessions") write
    concurrently; the file lock keeps every line whole, and both converge
    to the same best after refresh."""
    inputs, results = measured
    path = tmp_path / "store.jsonl"
    stores = [ScheduleStore(path), ScheduleStore(path)]
    pairs = sorted(
        (p for p in zip(inputs, results) if p[1].valid),
        key=lambda p: p[1].min_cost,
        reverse=True,  # worst first: every put is an improvement
    )
    errors = []

    def writer(store, offset):
        try:
            for inp, res in pairs[offset::2]:
                store.put(inp, res)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(stores[index], index))
        for index in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    # no torn/malformed lines: a strict reload parses every line
    fresh = ScheduleStore(path)
    assert fresh.segment_lines >= 1
    best = min(r.min_cost for _, r in pairs)
    assert fresh.lookup(task).best_cost == pytest.approx(best)
    # both sessions observe the merged result after refresh
    for store in stores:
        store.refresh()
        assert store.lookup(task).best_cost == pytest.approx(best)


def test_store_writer_streams_new_bests(task, measured):
    inputs, results = measured
    store = ScheduleStore()
    writer = StoreWriter(store)
    from repro.callbacks import MeasureResultEvent

    for inp, res in zip(inputs, results):
        writer.on_result(
            MeasureResultEvent(task=task, policy=None, input=inp, result=res)
        )
    best = min(r.min_cost for r in results if r.valid)
    assert store.lookup(task).best_cost == pytest.approx(best)


# ---------------------------------------------------------------------------
# Consumer path 1: instant lookup through the Tuner
# ---------------------------------------------------------------------------


def test_instant_lookup_matches_fresh_search_log_replay(tmp_path, task):
    log = tmp_path / "tuning.json"
    store = ScheduleStore(tmp_path / "store.jsonl")
    cold = Tuner(
        task, options=SMALL, store=store, callbacks=[RecordToFile(log)]
    ).tune()
    assert not cold.from_store and cold.num_trials == SMALL.num_measure_trials

    hit = Tuner(task, options=SMALL, store=ScheduleStore(store.path)).tune()
    assert hit.from_store
    assert hit.num_trials == 0
    assert hit.best_cost == cold.best_cost
    # the served state is the same program the classic log replay rebuilds
    replayed = apply_history_best(task, load_records(log))
    assert str(hit.best_state) == str(replayed) == str(cold.best_state)


def test_store_refresh_option_forces_a_retune(task):
    store = ScheduleStore()
    Tuner(task, options=SMALL, store=store).tune()
    options = TuningOptions(
        num_measure_trials=8, num_measures_per_round=8, store_refresh=True
    )
    retuned = Tuner(task, options=options, store=store).tune()
    assert not retuned.from_store
    assert retuned.num_trials == 8


def test_store_min_trials_caps_a_hit_session(task):
    store = ScheduleStore()
    cold = Tuner(task, options=SMALL, store=store).tune()
    options = TuningOptions(
        num_measure_trials=16, num_measures_per_round=4, store_min_trials=4
    )
    warm = Tuner(task, options=options, store=store).tune()
    assert not warm.from_store
    assert warm.num_trials == 4  # capped by store_min_trials on a hit
    # the warm session cannot end up worse than the stored best it seeds
    assert store.lookup(task).best_cost <= cold.best_cost


def test_store_via_tuning_options(task):
    store = ScheduleStore()
    options = TuningOptions(
        num_measure_trials=16, num_measures_per_round=8, schedule_store=store
    )
    cold = Tuner(task, options=options).tune()
    assert not cold.from_store
    hit = Tuner(task, options=options).tune()
    assert hit.from_store and hit.num_trials == 0
    assert hit.best_cost == cold.best_cost


def test_conflicting_stores_raise(task):
    options = TuningOptions(schedule_store=ScheduleStore())
    with pytest.raises(ValueError, match="different"):
        Tuner(task, options=options, store=ScheduleStore())


# ---------------------------------------------------------------------------
# Consumer path 2: cross-session warm-start
# ---------------------------------------------------------------------------


def test_warm_start_population_contains_replayed_best(task):
    store = ScheduleStore()
    cold = Tuner(task, options=SMALL, store=store).tune()
    best_fingerprint = store.lookup(task).to_state(task).fingerprint()

    policy = SketchPolicy(task, schedule_store=store, seed=1)
    warm = policy._warm_start_states()
    assert [s.fingerprint() for s in warm] == [best_fingerprint]
    # the stored best is pinned to the front of the first measured batch
    candidates = policy.propose_candidates(8)
    assert candidates[0].fingerprint() == best_fingerprint
    # replaying it reproduces the cold session's best program exactly
    assert str(candidates[0]) == str(cold.best_state)
    # one-shot: the first proposal consumed the warm-start
    assert policy._warm_consumed


def test_warm_start_from_structurally_similar_workload(task):
    store = ScheduleStore()
    Tuner(task, options=SMALL, store=store).tune()
    # double every extent: same DAG structure, sizes the stored splits divide
    resized = SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu())
    assert resized.structure_key == task.structure_key
    assert resized.workload_fingerprint != task.workload_fingerprint

    policy = SketchPolicy(resized, schedule_store=store, seed=1)
    warm = policy._warm_start_states()
    assert len(warm) == 1
    stored_steps = store.lookup(task).record.steps
    assert warm[0].serialize_steps() == stored_steps


def test_warm_start_skips_inapplicable_foreign_sizes(task):
    store = ScheduleStore()
    Tuner(task, options=SMALL, store=store).tune()
    # a different structure class: no warm-start seeds at all
    unrelated = SearchTask(make_matmul_dag(32, 32, 32), intel_cpu())
    assert unrelated.structure_key != task.structure_key
    policy = SketchPolicy(unrelated, schedule_store=store, seed=1)
    assert policy._warm_start_states() == []
    # proposal still works from the random-sampling fallback
    assert policy.propose_candidates(4)


# ---------------------------------------------------------------------------
# Consumer path 3: tuning as a service
# ---------------------------------------------------------------------------


def test_service_misses_search_then_hits_serve_instantly(tmp_path):
    hw = intel_cpu()
    t_relu = SearchTask(make_matmul_relu_dag(32, 32, 32), hw, desc="relu")
    t_mm = SearchTask(make_matmul_dag(32, 32, 32), hw, desc="mm")
    path = tmp_path / "svc.jsonl"

    service = TuningService(ScheduleStore(path), options=SMALL)
    r_relu = service.submit(t_relu, priority=2.0)
    r_mm = service.submit(t_mm)
    done = service.run()
    assert done == [r_relu, r_mm]
    assert r_relu.done and r_mm.done
    assert not r_relu.from_store and not r_mm.from_store
    assert r_relu.num_trials + r_mm.num_trials == SMALL.num_measure_trials
    assert r_relu.best_state is not None and r_mm.best_state is not None

    # a second service over the same segment file serves both instantly
    second = TuningService(ScheduleStore(path), options=SMALL)
    q_relu = second.submit(t_relu)
    q_mm = second.submit(t_mm)
    second.run()
    assert q_relu.from_store and q_relu.num_trials == 0
    assert q_mm.from_store and q_mm.num_trials == 0
    assert q_relu.best_cost == r_relu.best_cost
    assert q_mm.best_cost == r_mm.best_cost
    assert str(q_relu.best_state) == str(r_relu.best_state)
    # no scheduler ran: nothing missed
    assert second.scheduler is None


def test_service_refresh_and_max_trials(tmp_path):
    hw = intel_cpu()
    t1 = SearchTask(make_matmul_relu_dag(32, 32, 32), hw)
    store = ScheduleStore(tmp_path / "svc.jsonl")
    service = TuningService(store, options=SMALL)
    service.submit(t1)
    service.run()

    # refresh=True ignores the hit and re-tunes under its trial cap
    again = TuningService(store, options=SMALL)
    request = again.submit(t1, refresh=True, max_trials=8)
    again.run()
    assert not request.from_store
    assert 0 < request.num_trials <= 8


def test_service_priorities_skew_the_shared_budget():
    hw = intel_cpu()
    heavy = SearchTask(make_matmul_relu_dag(32, 32, 32), hw, desc="heavy")
    light = SearchTask(make_matmul_dag(32, 32, 32), hw, desc="light")
    service = TuningService(
        ScheduleStore(),
        options=TuningOptions(num_measure_trials=32, num_measures_per_round=4),
    )
    r_heavy = service.submit(heavy, priority=8.0)
    r_light = service.submit(light, priority=1.0)
    service.run()
    assert r_heavy.num_trials + r_light.num_trials == 32
    # the 8x-weighted request attracts the larger share of the budget
    assert r_heavy.num_trials > r_light.num_trials


def test_service_rejects_bad_requests():
    service = TuningService(ScheduleStore())
    task = SearchTask(make_matmul_relu_dag(32, 32, 32), intel_cpu())
    with pytest.raises(ValueError, match="priority"):
        service.submit(task, priority=0.0)
    with pytest.raises(ValueError, match="max_trials"):
        service.submit(task, max_trials=0)
    with pytest.raises(ValueError, match="different"):
        TuningService(
            ScheduleStore(), options=TuningOptions(schedule_store=ScheduleStore())
        )


def test_service_run_without_requests_is_a_noop():
    service = TuningService(ScheduleStore())
    assert service.run() == []
