"""Tests for the network task suites and task extraction."""

import pytest

from repro.hardware import arm_cpu, intel_cpu
from repro.workloads import NETWORK_NAMES, extract_tasks, get_network_tasks


def test_all_five_networks_are_defined():
    assert set(NETWORK_NAMES) == {"resnet-50", "mobilenet-v2", "resnet3d-18", "dcgan", "bert"}


@pytest.mark.parametrize("name", NETWORK_NAMES)
def test_network_tasks_have_positive_weights_and_flops(name):
    tasks = get_network_tasks(name, batch=1)
    assert len(tasks) >= 5
    for task in tasks:
        assert task.weight >= 1
        assert task.dag.flop_count() > 0
        assert task.desc


def test_unknown_network_rejected():
    with pytest.raises(ValueError):
        get_network_tasks("alexnet")


def test_network_registry_is_complete():
    """Every advertised network name is backed by a registered builder and
    vice versa — NETWORK_NAMES is the registry, not a parallel list."""
    from repro.workloads.networks import _NETWORKS

    assert set(_NETWORKS) == set(NETWORK_NAMES)
    for name in NETWORK_NAMES:
        assert get_network_tasks(name, batch=1)


def test_resnet50_task_count_close_to_paper():
    """§6: ResNet-50 has 29 unique subgraphs among its conv layers."""
    tasks = get_network_tasks("resnet-50", batch=1)
    assert 15 <= len(tasks) <= 35


def test_resnet50_weights_cover_all_conv_layers():
    tasks = get_network_tasks("resnet-50", batch=1)
    conv_instances = sum(t.weight for t in tasks if "conv" in t.desc)
    # ResNet-50 has 53 convolutions (including downsample projections).
    assert 45 <= conv_instances <= 60


def test_bert_dominated_by_matmuls():
    tasks = get_network_tasks("bert", batch=1)
    flops = sum(t.dag.flop_count() * t.weight for t in tasks)
    dense_flops = sum(
        t.dag.flop_count() * t.weight for t in tasks if "768" in t.desc or "3072" in t.desc
    )
    assert dense_flops / flops > 0.5


def test_batch_increases_total_flops():
    one = sum(t.dag.flop_count() * t.weight for t in get_network_tasks("mobilenet-v2", 1))
    sixteen = sum(t.dag.flop_count() * t.weight for t in get_network_tasks("mobilenet-v2", 16))
    assert sixteen == pytest.approx(16 * one, rel=0.01)


def test_extract_tasks_single_network():
    tasks, weights, task_to_dnn = extract_tasks(["dcgan"], batch=1)
    assert len(tasks) == len(weights) == len(task_to_dnn)
    assert set(task_to_dnn) == {0}
    assert all(t.hardware_params.name == intel_cpu().name for t in tasks)


def test_extract_tasks_multiple_networks_and_hardware():
    tasks, weights, task_to_dnn = extract_tasks(
        ["dcgan", "bert"], batch=1, hardware=arm_cpu()
    )
    assert set(task_to_dnn) == {0, 1}
    assert all(t.hardware_params.kind == "cpu" for t in tasks)
    assert all(t.hardware_params.name == arm_cpu().name for t in tasks)


def test_extract_tasks_max_tasks_keeps_heaviest():
    full_tasks, full_weights, _ = extract_tasks(["resnet-50"], batch=1)
    small_tasks, small_weights, _ = extract_tasks(["resnet-50"], batch=1, max_tasks_per_network=5)
    assert len(small_tasks) == 5
    heaviest = max(t.flop_count() * w for t, w in zip(full_tasks, full_weights))
    assert any(t.flop_count() * w == heaviest for t, w in zip(small_tasks, small_weights))
