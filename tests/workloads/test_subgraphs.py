"""Tests for the ConvLayer and TBG subgraph workloads."""

import numpy as np
import pytest

from repro.codegen import execute_dag
from repro.hardware import intel_cpu
from repro.search import generate_sketches
from repro.task import SearchTask
from repro.workloads import SUBGRAPH_NAMES, conv_layer, make_subgraph_dag, subgraph_shape_configs, tbg


def test_subgraph_config_table():
    configs = subgraph_shape_configs()
    assert set(configs) == set(SUBGRAPH_NAMES)
    assert all(len(v) == 4 for v in configs.values())


def test_conv_layer_structure():
    dag = conv_layer(1, 8, 14, 14, 16, 3, 1, 1)
    names = [op.name for op in dag.compute_ops]
    assert names == ["conv2d", "bn", "relu"]
    assert dag.outputs[0].shape == (1, 16, 14, 14)


def test_conv_layer_numerics():
    dag = conv_layer(1, 2, 5, 5, 3, 3, 1, 1)
    data = np.random.randn(1, 2, 5, 5)
    weight = np.random.randn(3, 2, 3, 3)
    scale = np.random.rand(3) + 0.5
    shift = np.random.randn(3)
    out = execute_dag(dag, {"data": data, "weight": weight, "bn_scale": scale, "bn_shift": shift})
    conv = out["conv2d"]
    expected = np.maximum(conv * scale[None, :, None, None] + shift[None, :, None, None], 0.0)
    np.testing.assert_allclose(out["relu"], expected, rtol=1e-10)


def test_tbg_matches_einsum():
    dag = tbg(2, 4, 3, 5)
    q = np.random.randn(2, 4, 3, 5)
    k = np.random.randn(2, 4, 3, 5)
    out = execute_dag(dag, {"query": q, "key": k})["attention_score"]
    # scores[b*h, i, j] = sum_d q[b, i, h, d] * k[b, j, h, d]
    ref = np.einsum("bihd,bjhd->bhij", q, k).reshape(6, 4, 4)
    np.testing.assert_allclose(out, ref, rtol=1e-10)


def test_make_subgraph_dag_dispatch():
    for name in SUBGRAPH_NAMES:
        config = subgraph_shape_configs()[name][0]
        dag = make_subgraph_dag(name, config, batch=1)
        assert dag.flop_count() > 0
    with pytest.raises(ValueError):
        make_subgraph_dag("Softmax", {}, 1)


def test_conv_layer_sketches_fuse_the_epilogue():
    dag = conv_layer(1, 16, 14, 14, 32, 3, 1, 1)
    sketches = generate_sketches(SearchTask(dag, intel_cpu()))
    assert any(
        any(step.kind == "compute_at" and step.stage_name == "relu" for step in sketch.transform_steps)
        for sketch in sketches
    )


def test_tbg_sketches_exist():
    dag = tbg(1, 128, 12, 64)
    sketches = generate_sketches(SearchTask(dag, intel_cpu()))
    assert len(sketches) >= 2
