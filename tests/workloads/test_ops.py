"""Tests for the single-operator workload definitions."""

import numpy as np
import pytest

from repro.codegen import execute_dag
from repro.workloads import (
    OP_NAMES,
    batch_matmul,
    capsule_conv2d,
    conv2d,
    conv3d,
    dilated_conv2d,
    group_conv2d,
    make_op_dag,
    matmul,
    single_op_shape_configs,
)


def test_all_ten_operators_are_defined():
    assert len(OP_NAMES) == 10
    configs = single_op_shape_configs()
    assert set(configs) == set(OP_NAMES)


def test_four_shape_configs_per_operator():
    for name, configs in single_op_shape_configs().items():
        assert len(configs) == 4, name


@pytest.mark.parametrize("op_name", OP_NAMES)
@pytest.mark.parametrize("batch", [1, 16])
def test_every_test_case_builds_a_dag(op_name, batch):
    config = single_op_shape_configs()[op_name][0]
    dag = make_op_dag(op_name, config, batch=batch)
    assert dag.flop_count() > 0
    assert len(dag.compute_ops) >= 1


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        make_op_dag("FFT", {}, 1)


def test_batch_scales_flops_linearly():
    config = single_op_shape_configs()["C2D"][0]
    flops_1 = make_op_dag("C2D", config, batch=1).flop_count()
    flops_16 = make_op_dag("C2D", config, batch=16).flop_count()
    assert flops_16 == 16 * flops_1


def test_matmul_flop_count_formula():
    assert matmul(32, 48, 64).flop_count() == 2 * 32 * 48 * 64


def test_batch_matmul_output_shape():
    dag = batch_matmul(4, 8, 16, 32)
    assert dag.outputs[0].shape == (4, 8, 16)


def test_conv2d_output_shape_stride_two():
    dag = conv2d(1, 8, 32, 32, 16, 3, 2, 1)
    assert dag.outputs[0].shape == (1, 16, 16, 16)


def test_dilated_conv_keeps_resolution_with_matching_pad():
    dag = dilated_conv2d(1, 8, 32, 32, 8, 3, 1, 2, dilation=2)
    assert dag.outputs[0].shape == (1, 8, 32, 32)


def test_group_conv_matches_grouped_numpy_reference():
    groups = 2
    dag = group_conv2d(1, 4, 5, 5, 4, 3, 1, 1, groups)
    data = np.random.randn(1, 4, 5, 5)
    weight = np.random.randn(4, 2, 3, 3)
    out = execute_dag(dag, {"data": data, "weight": weight})["group_conv2d"]
    padded = np.zeros((1, 4, 7, 7))
    padded[:, :, 1:6, 1:6] = data
    ref = np.zeros((1, 4, 5, 5))
    for co in range(4):
        group = co // 2
        channels = slice(group * 2, group * 2 + 2)
        for h in range(5):
            for w in range(5):
                ref[0, co, h, w] = np.sum(padded[0, channels, h:h + 3, w:w + 3] * weight[co])
    np.testing.assert_allclose(out, ref, rtol=1e-10)


def test_conv3d_output_shape():
    dag = conv3d(1, 4, 8, 8, 8, 8, 3, 1, 1)
    assert dag.outputs[0].shape == (1, 8, 8, 8, 8)


def test_capsule_conv_shapes_and_flops():
    dag = capsule_conv2d(1, 4, 8, 8, 8, 3, 1, 1, capsule_size=4)
    assert dag.outputs[0].shape == (1, 8, 8, 8, 4, 4)
    # reduction over ci * kh * kw * capsule
    assert dag.flop_count() == 2 * (8 * 8 * 8 * 4 * 4) * (4 * 3 * 3 * 4)


def test_norm_has_two_stages():
    dag = make_op_dag("NRM", dict(m=64, n=64), batch=2)
    names = [op.name for op in dag.compute_ops]
    assert names == ["sumsq", "norm"]


# ---------------------------------------------------------------------------
# Parameter validation: degenerate conv configurations must raise, not build
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kernel=0),
        dict(kernel=-3),
        dict(stride=0),
        dict(stride=-1),
        dict(padding=-1),
        dict(dilation=0),
    ],
)
def test_conv2d_rejects_bad_knobs(kwargs):
    params = dict(batch=1, in_channels=4, height=8, width=8, out_channels=4,
                  kernel=3, stride=1, padding=1, dilation=1)
    params.update(kwargs)
    with pytest.raises(ValueError):
        conv2d(**params)


def test_conv2d_rejects_non_positive_output():
    # 4x4 input, 5x5 kernel, no padding: output would be 0x0.
    with pytest.raises(ValueError, match="output"):
        conv2d(1, 4, 4, 4, 4, 5, 1, 0)
    # Dilation blows the effective kernel past the padded input.
    with pytest.raises(ValueError, match="output"):
        conv2d(1, 4, 8, 8, 4, 3, 1, 0, dilation=4)


def test_conv2d_rejects_non_positive_input():
    with pytest.raises(ValueError):
        conv2d(1, 4, 0, 8, 4, 3, 1, 1)


def test_conv3d_rejects_degenerate_depth():
    with pytest.raises(ValueError):
        conv3d(1, 4, 2, 8, 8, 4, 3, 1, 0)


def test_group_conv2d_rejects_indivisible_groups():
    with pytest.raises(ValueError, match="divide"):
        group_conv2d(1, 4, 8, 8, 4, 3, 1, 1, groups=3)


def test_capsule_conv2d_rejects_bad_capsule_size():
    with pytest.raises(ValueError):
        capsule_conv2d(1, 4, 8, 8, 8, 3, 1, 1, capsule_size=0)
