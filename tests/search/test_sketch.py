"""Tests for sketch enumeration on representative DAGs."""

import pytest

from repro.hardware import intel_cpu
from repro.search import FULL_SPACE, LIMITED_SPACE, generate_sketches
from repro.task import SearchTask
from repro.workloads import conv_layer, make_op_dag, single_op_shape_configs

from ..conftest import make_matmul_dag, make_matmul_relu_dag, make_norm_dag


def _task(dag):
    return SearchTask(dag, intel_cpu())


def test_matmul_relu_sketches(matmul_relu_dag):
    sketches = generate_sketches(_task(matmul_relu_dag))
    # naive (skip/skip), plain tiling, tiling+fusion
    assert len(sketches) == 3
    keys = {repr(s.serialize_steps()) for s in sketches}
    assert len(keys) == len(sketches)  # de-duplicated


def test_matmul_relu_contains_fused_sketch(matmul_relu_dag):
    sketches = generate_sketches(_task(matmul_relu_dag))
    fused = [
        s
        for s in sketches
        if any(step.kind == "compute_at" for step in s.transform_steps)
    ]
    assert fused
    state = fused[0]
    assert state.stage("D").compute_location.kind == "at"


def test_output_matmul_gets_cache_sketch(matmul_dag):
    sketches = generate_sketches(_task(matmul_dag))
    assert any(
        any(step.kind == "cache_write" for step in s.transform_steps) for s in sketches
    )


def test_norm_gets_rfactor_sketch(norm_dag):
    sketches = generate_sketches(_task(norm_dag))
    assert any(
        any(step.kind == "rfactor" for step in s.transform_steps) for s in sketches
    )


def test_limited_space_has_fewer_or_equal_sketches(matmul_dag):
    full = generate_sketches(_task(matmul_dag), options=FULL_SPACE)
    limited = generate_sketches(_task(matmul_dag), options=LIMITED_SPACE)
    assert len(limited) <= len(full)
    assert not any(
        any(step.kind in ("cache_write", "rfactor") for step in s.transform_steps)
        for s in limited
    )


def test_sketches_are_incomplete_programs(matmul_relu_dag):
    sketches = generate_sketches(_task(matmul_relu_dag))
    tiled = [s for s in sketches if s.transform_steps]
    assert tiled
    assert all(not s.is_concrete() for s in tiled)


def test_sketches_preserve_iteration_space(matmul_relu_dag):
    """Tile structures never lose or duplicate iterations (placeholders = 1)."""
    sketches = generate_sketches(_task(matmul_relu_dag))
    for sketch in sketches:
        c_stage_name = "C.cache" if sketch.has_stage("C.cache") else "C"
        assert sketch.stage(c_stage_name).iteration_count() == 64 ** 3


def test_conv_layer_sketch_inlines_bn(intel_hardware):
    dag = conv_layer(1, 16, 14, 14, 32, 3, 1, 1)
    sketches = generate_sketches(SearchTask(dag, intel_hardware))
    # The bn stage (intermediate elementwise) must be inlined in at least one
    # sketch; the relu (output) must never be inlined.
    assert any(
        any(step.kind == "compute_inline" and step.stage_name == "bn" for step in s.transform_steps)
        for s in sketches
    )
    assert not any(
        any(step.kind == "compute_inline" and step.stage_name == "relu" for step in s.transform_steps)
        for s in sketches
    )


@pytest.mark.parametrize("op_name", ["C1D", "C2D", "GMM", "DEP", "T2D", "NRM"])
def test_every_operator_family_produces_sketches(op_name):
    config = single_op_shape_configs()[op_name][0]
    dag = make_op_dag(op_name, config, batch=1)
    sketches = generate_sketches(SearchTask(dag, intel_cpu()))
    assert 1 <= len(sketches) <= 32


def test_sketch_count_is_small(matmul_relu_dag):
    """The paper emphasises that sketches are 'a few basic structures'."""
    sketches = generate_sketches(_task(matmul_relu_dag))
    assert len(sketches) < 10
