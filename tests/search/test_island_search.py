"""Island-model evolutionary search (parallel `search_workers`): determinism,
serial parity, migration accounting, the no-double-scoring contract, and the
LRU bound on the worker-side model cache."""

import hashlib
import pickle

import numpy as np
import pytest

from repro.cost_model import CostModel
from repro.hardware import intel_cpu
from repro.search import EvolutionarySearch, generate_sketches, sample_initial_population
from repro.task import SearchTask
from repro.utils.procpool import LazyProcessPool

from ..conftest import make_matmul_relu_dag


class StableCostModel(CostModel):
    """Deterministic *across processes*: scores derive from the hex
    fingerprint digits, not ``hash()`` (which is salted per process), so the
    pooled islands score exactly like the in-process ones."""

    def update(self, inputs, results):
        return None

    def predict(self, task, states):
        return np.asarray(
            [int(s.fingerprint()[:12], 16) % 99991 / 99991.0 for s in states]
        )


class CountingStableModel(StableCostModel):
    """Stable scores + a record of every predicted fingerprint (in-process
    islands share the model object, so the counters observe every call)."""

    def __init__(self):
        self.predict_calls = 0
        self.predicted_keys = []

    def predict(self, task, states):
        self.predict_calls += 1
        self.predicted_keys.extend(s.fingerprint() for s in states)
        return super().predict(task, states)


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(256, 256, 256), intel_cpu())


@pytest.fixture
def population(task, rng):
    sketches = generate_sketches(task)
    return sample_initial_population(task, sketches, 24, rng)


def _fingerprints(states):
    return [s.fingerprint() for s in states]


def _search(task, population, model=None, **kwargs):
    evo = EvolutionarySearch(
        task,
        model if model is not None else StableCostModel(),
        population_size=24,
        num_generations=3,
        seed=11,
        **kwargs,
    )
    return evo, evo.search(population, num_best=8)


def test_one_island_matches_the_default_serial_search(task, population):
    _, best_default = _search(task, population)
    _, best_one = _search(task, population, n_islands=1)
    assert _fingerprints(best_default) == _fingerprints(best_one)


def test_island_search_is_deterministic_given_seed(task, population):
    evo1, best1 = _search(task, population, n_islands=3, migration_interval=1)
    evo2, best2 = _search(task, population, n_islands=3, migration_interval=1)
    assert _fingerprints(best1) == _fingerprints(best2)
    assert evo1.last_stats == evo2.last_stats


def test_pooled_islands_match_in_process_islands(task, population):
    pool = LazyProcessPool(max_workers=3)
    try:
        _, best_pooled = _search(
            task, population, n_islands=3, migration_interval=1, pool=pool
        )
    finally:
        pool.close()
    _, best_inproc = _search(task, population, n_islands=3, migration_interval=1)
    assert _fingerprints(best_pooled) == _fingerprints(best_inproc)


def test_islands_are_capped_by_population_size(task, population):
    evo, best = _search(task, population[:2], n_islands=8)
    assert evo.last_stats["islands"] <= 2
    assert best


def test_island_stats_report_barriers_and_migrations(task, population):
    evo, _ = _search(
        task, population, n_islands=3, migration_interval=1, migration_k=2
    )
    # 3 generations at interval 1 = 2 mid-search barriers.
    assert evo.last_stats["islands"] == 3
    assert evo.last_stats["barriers"] == 2
    assert isinstance(evo.last_stats["migrated_keys"], list)


def test_no_program_is_double_scored_across_islands_and_migrations(task, population):
    """Extends the PR 2 counting-stub regression test to the island model:
    the coordinator scores the initial population once, per-island caches are
    seeded from it, and migrated elites travel *with* their scores, so
    neither is ever re-predicted.  The only permitted duplicates are two
    islands independently breeding the same offspring inside the same chunk
    — between barriers the islands are isolated (in pool mode they are
    separate processes), so those concurrent discoveries cannot be deduped
    and are bounded by the island count."""
    model = CountingStableModel()
    evo, _ = _search(
        task,
        population,
        model=model,
        n_islands=3,
        migration_interval=1,
        migration_k=2,
        mutation_prob=1.0,  # no crossover, so predict_stages never runs
    )
    counts = {k: model.predicted_keys.count(k) for k in set(model.predicted_keys)}
    # The initial population was scored exactly once, by the coordinator.
    for key in {s.fingerprint() for s in population}:
        assert counts[key] == 1
    # Migrated elites were scored once by their home island and never again.
    migrated = evo.last_stats["migrated_keys"]
    assert migrated, "expected elite migration at interval-1 barriers"
    for key in migrated:
        assert counts[key] == 1
    # Concurrent same-chunk rediscovery is the only duplication channel.
    assert max(counts.values()) <= evo.last_stats["islands"]


def test_migration_zero_still_merges_score_caches(task, population):
    """With migration_k=0 no elites travel, but the score caches still merge
    at barriers — a program scored before a barrier is never re-predicted
    in a later chunk, whichever island rediscovers it (same-chunk concurrent
    discoveries excepted, as above)."""
    model = CountingStableModel()
    evo, _ = _search(
        task,
        population,
        model=model,
        n_islands=2,
        migration_interval=1,
        migration_k=0,
        mutation_prob=1.0,
    )
    assert evo.last_stats["migrated_keys"] == []
    counts = {k: model.predicted_keys.count(k) for k in set(model.predicted_keys)}
    for key in {s.fingerprint() for s in population}:
        assert counts[key] == 1
    assert max(counts.values()) <= evo.last_stats["islands"]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_islands": 0},
        {"migration_interval": 0},
        {"migration_k": -1},
    ],
)
def test_invalid_island_configuration_raises(task, kwargs):
    with pytest.raises(ValueError):
        EvolutionarySearch(task, StableCostModel(), **kwargs)


def _model_ref(version):
    blob = pickle.dumps(StableCostModel(), protocol=pickle.HIGHEST_PROTOCOL)
    # Distinct digests per ref: each stands in for a different model/version.
    digest = hashlib.sha1(blob + bytes([version])).hexdigest()
    return ("pickled", digest, version, blob)


def test_worker_model_cache_is_lru_bounded():
    """A long multi-task session ships many (model, version) payloads; the
    worker-side cache must stay bounded, evicting least-recently-used
    entries, while hits return the already-deserialized object."""
    from repro.search import evolutionary

    saved = dict(evolutionary._MODEL_CACHE)
    evolutionary._MODEL_CACHE.clear()
    try:
        cap = evolutionary._MODEL_CACHE_CAP
        refs = [_model_ref(v) for v in range(cap + 2)]
        for ref in refs:
            evolutionary._resolve_model_ref(ref)
        assert len(evolutionary._MODEL_CACHE) == cap
        # Only the most recent `cap` payloads survive, oldest-first evicted.
        assert list(evolutionary._MODEL_CACHE) == [
            (ref[1], ref[2]) for ref in refs[-cap:]
        ]
        # A hit returns the cached object (no re-unpickle) and refreshes
        # its recency, so the *next* insert evicts a different entry.
        key = (refs[-cap][1], refs[-cap][2])
        cached = evolutionary._MODEL_CACHE[key]
        assert evolutionary._resolve_model_ref(refs[-cap]) is cached
        evolutionary._resolve_model_ref(_model_ref(99))
        assert key in evolutionary._MODEL_CACHE
        assert len(evolutionary._MODEL_CACHE) == cap
    finally:
        evolutionary._MODEL_CACHE.clear()
        evolutionary._MODEL_CACHE.update(saved)
