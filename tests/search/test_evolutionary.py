"""Tests for the evolutionary search (§5.1)."""

import numpy as np
import pytest

from repro.cost_model import CostModel, LearnedCostModel, RandomCostModel
from repro.hardware import CostSimulator, intel_cpu
from repro.search import EvolutionarySearch, generate_sketches, sample_initial_population
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


class OracleCostModel(CostModel):
    """A perfect cost model backed by the simulator (for testing only)."""

    def __init__(self, hardware):
        self.sim = CostSimulator(hardware)

    def update(self, inputs, results):
        return None

    def predict(self, task, states):
        scores = []
        for state in states:
            try:
                scores.append(1.0 / self.sim.estimate(state))
            except Exception:
                scores.append(-1e9)
        return np.asarray(scores)

    def predict_stages(self, task, state):
        detailed = self.sim.estimate_detailed(state)
        return np.asarray([1.0 / max(n.total, 1e-12) for n in detailed.nests])


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(256, 256, 256), intel_cpu())


@pytest.fixture
def population(task, rng):
    sketches = generate_sketches(task)
    return sample_initial_population(task, sketches, 24, rng)


def test_search_returns_requested_count(task, population):
    evo = EvolutionarySearch(task, RandomCostModel(seed=0), population_size=24, num_generations=2, seed=0)
    best = evo.search(population, num_best=10)
    assert 1 <= len(best) <= 10
    assert all(s.is_concrete() for s in best)


def test_search_results_are_distinct(task, population):
    evo = EvolutionarySearch(task, RandomCostModel(seed=0), population_size=24, num_generations=2, seed=0)
    best = evo.search(population, num_best=10)
    keys = {repr(s.serialize_steps()) for s in best}
    assert len(keys) == len(best)


def test_search_empty_population(task):
    evo = EvolutionarySearch(task, RandomCostModel(), seed=0)
    assert evo.search([], num_best=4) == []


def test_evolution_improves_true_cost_with_oracle_model(task, population):
    """With a perfect fitness signal, evolution must find programs at least as
    good as the best initial sample — the core premise of fine-tuning (§5)."""
    sim = CostSimulator(task.hardware_params)
    oracle = OracleCostModel(task.hardware_params)
    evo = EvolutionarySearch(task, oracle, population_size=24, num_generations=4, seed=1)
    best = evo.search(population, num_best=4)
    best_initial = min(sim.estimate(s) for s in population)
    best_evolved = min(sim.estimate(s) for s in best)
    assert best_evolved <= best_initial * 1.001


def test_evolution_is_deterministic_given_seed(task, population):
    evo1 = EvolutionarySearch(task, RandomCostModel(seed=5), population_size=16, num_generations=2, seed=9)
    evo2 = EvolutionarySearch(task, RandomCostModel(seed=5), population_size=16, num_generations=2, seed=9)
    best1 = evo1.search(population, num_best=5)
    best2 = evo2.search(population, num_best=5)
    assert [repr(s.serialize_steps()) for s in best1] == [repr(s.serialize_steps()) for s in best2]


def test_evolution_generates_programs_outside_initial_population(task, population):
    evo = EvolutionarySearch(task, OracleCostModel(task.hardware_params), population_size=24, num_generations=3, seed=2)
    best = evo.search(population, num_best=8)
    initial_keys = {repr(s.serialize_steps()) for s in population}
    new_programs = [s for s in best if repr(s.serialize_steps()) not in initial_keys]
    assert new_programs, "evolution only returned the initial samples"


class CountingCostModel(CostModel):
    """Deterministic stub recording every batched predict call (cache tests)."""

    def __init__(self):
        self.predict_calls = 0
        self.predicted_keys = []

    def update(self, inputs, results):
        return None

    def predict(self, task, states):
        self.predict_calls += 1
        keys = [s.fingerprint() for s in states]
        self.predicted_keys.extend(keys)
        # Deterministic per-program scores (stable within one process).
        return np.asarray([(hash(k) % 9973) / 9973.0 for k in keys])


def test_each_program_is_scored_exactly_once_per_search(task, population):
    """Regression test for the elite double-scoring bug: the seed re-predicted
    the whole population — elites included — at the start of every generation.
    With carried scores, every distinct program hits the cost model exactly
    once, in one batched call per generation (plus one for the initial
    population)."""
    num_generations = 3
    model = CountingCostModel()
    evo = EvolutionarySearch(
        task,
        model,
        population_size=16,
        num_generations=num_generations,
        mutation_prob=1.0,  # no crossover, so predict_stages never runs
        seed=0,
    )
    evo.search(population, num_best=4)
    # No program is ever re-scored (elites carry their scores).
    assert len(model.predicted_keys) == len(set(model.predicted_keys))
    # One batched call for the initial population + at most one per generation.
    assert model.predict_calls <= 1 + num_generations
    # The initial population — the source of every generation's elites — was
    # scored once and only once.
    initial_keys = [s.fingerprint() for s in population]
    predicted = model.predicted_keys
    assert all(predicted.count(k) == 1 for k in initial_keys)


def test_carried_elite_scores_keep_hall_of_fame_ranking(task, population):
    """The best returned program must be the argmax of the stub's scores over
    everything it was asked to predict."""
    model = CountingCostModel()
    evo = EvolutionarySearch(task, model, population_size=16, num_generations=2, mutation_prob=1.0, seed=3)
    best = evo.search(population, num_best=1)
    assert len(best) == 1
    top_key = max(set(model.predicted_keys), key=lambda k: (hash(k) % 9973) / 9973.0)
    assert best[0].fingerprint() == top_key
