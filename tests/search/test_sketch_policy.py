"""Tests for the full Ansor search policy (§3-§5)."""

import numpy as np
import pytest

from repro.cost_model import LearnedCostModel, RandomCostModel
from repro.hardware import CostSimulator, ProgramMeasurer, intel_cpu
from repro.search import SketchPolicy
from repro.task import SearchTask, TuningOptions

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(256, 256, 256), intel_cpu(), desc="mm256")


def _policy(task, **kwargs):
    defaults = dict(population_size=24, num_generations=2, sample_init_population=24, seed=0)
    defaults.update(kwargs)
    return SketchPolicy(task, **defaults)


def test_one_round_measures_and_updates(task, measurer):
    policy = _policy(task)
    inputs, results = policy.continue_search_one_round(8, measurer)
    assert len(inputs) == 8
    assert len(results) == 8
    assert policy.num_trials == 8
    assert np.isfinite(policy.best_cost)
    assert policy.best_state is not None
    assert isinstance(policy.cost_model, LearnedCostModel)
    assert policy.cost_model.num_samples > 0


def test_rounds_do_not_remeasure_programs(task, measurer):
    policy = _policy(task)
    seen = set()
    for _ in range(3):
        inputs, _ = policy.continue_search_one_round(6, measurer)
        for inp in inputs:
            key = repr(inp.state.serialize_steps())
            assert key not in seen
            seen.add(key)


def test_tune_respects_trial_budget(task):
    policy = _policy(task)
    options = TuningOptions(num_measure_trials=20, num_measures_per_round=8)
    best = policy.tune(options)
    assert policy.num_trials == 20
    assert best is not None


def test_history_is_monotonically_improving(task):
    policy = _policy(task)
    policy.tune(TuningOptions(num_measure_trials=24, num_measures_per_round=8))
    costs = [cost for _, cost in policy.history]
    assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))


def test_search_beats_naive_schedule(task):
    policy = _policy(task)
    policy.tune(TuningOptions(num_measure_trials=32, num_measures_per_round=8))
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    assert policy.best_cost < naive / 5


@pytest.mark.slow
def test_search_finds_programs_better_than_random_sampling(task):
    """The fine-tuned search should beat pure random sampling with the same
    measurement budget (the Figure 7 'No fine-tuning' comparison)."""
    budget = TuningOptions(num_measure_trials=48, num_measures_per_round=12)
    ansor = _policy(task, seed=3)
    ansor.tune(budget, ProgramMeasurer(task.hardware_params, seed=3))
    random_policy = _policy(task, seed=3, cost_model=RandomCostModel(seed=3), use_evolutionary_search=False)
    random_policy.tune(budget, ProgramMeasurer(task.hardware_params, seed=3))
    assert ansor.best_cost <= random_policy.best_cost * 1.1


def test_best_throughput_consistency(task, measurer):
    policy = _policy(task)
    policy.continue_search_one_round(8, measurer)
    assert policy.best_throughput() == pytest.approx(task.flop_count() / policy.best_cost)


def test_eps_greedy_includes_random_candidates(task, measurer):
    policy = _policy(task, eps_greedy=0.5)
    inputs, _ = policy.continue_search_one_round(8, measurer)
    assert len(inputs) == 8


def test_sketches_cached(task):
    policy = _policy(task)
    first = policy.sketches
    assert policy.sketches is first


@pytest.mark.slow
def test_early_stopping(task):
    policy = _policy(task)
    options = TuningOptions(num_measure_trials=1000, num_measures_per_round=8, early_stopping=2)
    policy.tune(options)
    assert policy.num_trials < 1000
