"""Memoized lowering: ``lower_state`` must hit the cache for identical
programs and must never serve a stale program after a state is mutated —
neither through the fingerprint key (new steps -> new key) nor through
shared mutable objects (cached nests snapshot their stages and iterators)."""

import numpy as np
import pytest

from repro.codegen.lowering import clear_lowering_cache, lower_state
from repro.ir.state import State
from repro.search import generate_sketches, sample_initial_population
from repro.search.mutation import random_mutation
from repro.hardware import intel_cpu
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_lowering_cache()
    yield
    clear_lowering_cache()


@pytest.fixture
def dag():
    return make_matmul_relu_dag(64, 64, 64)


def test_identical_programs_share_one_lowering(dag):
    a = State.from_dag(dag).split("C", 0, [8]).parallel("C", 0)
    b = State.from_steps(dag, [s.copy() for s in a.transform_steps])
    assert lower_state(a) is lower_state(b)


def test_mutated_state_is_relowered_with_new_program(dag):
    state = State.from_dag(dag)
    before = lower_state(state)
    state.vectorize("D", 1)
    after = lower_state(state)
    assert after is not before
    assert after.nests["D"].loops[1].annotation == "vectorize"
    # The first, cached program must not have picked up the annotation.
    assert before.nests["D"].loops[1].annotation == "none"


def test_cache_is_isolated_from_in_place_state_mutation(dag):
    """The stale-program scenario: lower a state, mutate it in place, then
    replay its *old* history into a new state.  The cache hit for the old
    fingerprint must describe the old program, not the mutated stages."""
    state = State.from_dag(dag).split("C", 0, [8])
    old_steps = [s.copy() for s in state.transform_steps]
    cached = lower_state(state)
    # In-place mutation: annotates an Iterator object and sets a stage pragma.
    state.parallel("C", 0)
    state.pragma("C", "auto_unroll_max_step", 64)
    replayed = State.from_steps(dag, old_steps)
    hit = lower_state(replayed)
    assert hit is cached
    assert all(loop.annotation == "none" for loop in hit.nests["C"].loops)
    assert hit.nests["C"].stage.auto_unroll_max_step == 0


def test_pragma_is_visible_after_mutation(dag):
    state = State.from_dag(dag)
    lower_state(state)
    state.pragma("C", "auto_unroll_max_step", 512)
    assert lower_state(state).nests["C"].stage.auto_unroll_max_step == 512


def test_uncached_lowering_matches_cached(dag):
    state = State.from_dag(dag).split("C", 1, [16]).vectorize("C", 2)
    cached = lower_state(state)
    fresh = lower_state(state, use_cache=False)
    assert fresh is not cached
    assert set(fresh.nests) == set(cached.nests)
    for name in fresh.nests:
        a, b = fresh.nests[name], cached.nests[name]
        assert [(l.name, l.extent, l.annotation) for l in a.loops] == [
            (l.name, l.extent, l.annotation) for l in b.loops
        ]
        assert a.flops_per_iter == b.flops_per_iter


def test_mutation_never_observes_stale_programs():
    """Evolution-style churn: every mutated child must lower to a program
    consistent with a from-scratch (uncached) lowering of the same state."""
    task = SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu())
    rng = np.random.default_rng(0)
    population = sample_initial_population(task, generate_sketches(task), 8, rng)
    children = []
    for state in population:
        child = random_mutation(state, rng)
        if child is not None:
            children.append(child)
    assert children
    for child in children:
        cached = lower_state(child)
        fresh = lower_state(child, use_cache=False)
        for name in fresh.nests:
            assert [(l.name, l.extent, l.annotation) for l in fresh.nests[name].loops] == [
                (l.name, l.extent, l.annotation) for l in cached.nests[name].loops
            ]
            assert fresh.nests[name].stage.auto_unroll_max_step == (
                cached.nests[name].stage.auto_unroll_max_step
            )
