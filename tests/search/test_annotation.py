"""Tests for random annotation: tile-size filling and loop annotations (§4.2)."""

import numpy as np
import pytest

from repro.search import (
    FULL_SPACE,
    annotate_state,
    fill_tile_sizes,
    generate_sketches,
    random_factor_split,
    sample_complete_program,
    sample_initial_population,
)
from repro.search.space import SearchSpaceOptions
from repro.hardware import intel_cpu
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu())


@pytest.fixture
def sketches(task):
    return generate_sketches(task)


def test_random_factor_split_divides_extent(rng):
    for extent in (1, 7, 24, 64, 512):
        lengths = random_factor_split(extent, 3, rng)
        product = int(np.prod(lengths))
        assert extent % product == 0


def test_random_factor_split_respects_max_innermost(rng):
    for _ in range(20):
        lengths = random_factor_split(512, 3, rng, max_innermost=16)
        assert lengths[-1] <= 16


def test_fill_tile_sizes_makes_programs_concrete(task, sketches, rng):
    tiled = [s for s in sketches if not s.is_concrete()]
    assert tiled
    filled = fill_tile_sizes(tiled[0], rng)
    assert filled.is_concrete()


def test_fill_tile_sizes_preserves_iteration_space(task, sketches, rng):
    tiled = [s for s in sketches if not s.is_concrete()][0]
    filled = fill_tile_sizes(tiled, rng)
    name = "C.cache" if filled.has_stage("C.cache") else "C"
    assert filled.stage(name).iteration_count() == 64 ** 3


def test_annotation_adds_annotation_steps(task, sketches, rng):
    state = fill_tile_sizes([s for s in sketches if not s.is_concrete()][0], rng)
    before = len(state.transform_steps)
    annotate_state(state, task, rng)
    assert len(state.transform_steps) > before
    kinds = {s.kind for s in state.transform_steps}
    assert "annotate" in kinds


def test_annotated_program_has_parallel_outer_loop(task, sketches, rng):
    for _ in range(5):
        state = sample_complete_program(task, sketches, rng)
        annotations = [it.annotation for s in state.stages for it in s.iters]
        if "parallel" in annotations:
            return
    pytest.fail("no sampled program had a parallel loop")


def test_vectorize_only_on_spatial_innermost(task, sketches, rng):
    for _ in range(10):
        state = sample_complete_program(task, sketches, rng)
        for stage in state.stages:
            for idx, it in enumerate(stage.iters):
                if it.annotation == "vectorize":
                    assert it.is_spatial()


def test_disable_annotations_through_options(task, sketches, rng):
    options = SearchSpaceOptions(
        enable_parallel=False, enable_vectorize=False, auto_unroll_candidates=(0,)
    )
    state = fill_tile_sizes([s for s in sketches if not s.is_concrete()][0], rng, options)
    annotate_state(state, task, rng, options)
    annotations = {it.annotation for s in state.stages for it in s.iters}
    assert annotations == {"none"}


def test_sample_initial_population_distinct_and_concrete(task, sketches, rng):
    population = sample_initial_population(task, sketches, 16, rng)
    assert len(population) >= 8
    keys = {repr(s.serialize_steps()) for s in population}
    assert len(keys) == len(population)
    assert all(s.is_concrete() for s in population)


def test_sampled_programs_are_measurable(task, sketches, rng, measurer):
    from repro.hardware import MeasureInput

    population = sample_initial_population(task, sketches, 8, rng)
    results = measurer.measure([MeasureInput(task, s) for s in population])
    assert all(r.valid for r in results)


def test_sampling_is_deterministic_per_seed(task, sketches):
    pop_a = sample_initial_population(task, sketches, 8, np.random.default_rng(42))
    pop_b = sample_initial_population(task, sketches, 8, np.random.default_rng(42))
    assert [repr(s.serialize_steps()) for s in pop_a] == [repr(s.serialize_steps()) for s in pop_b]
