"""Tests for the baseline search strategies and the library stand-in."""

import numpy as np
import pytest

from repro.cost_model import RandomCostModel
from repro.hardware import CostSimulator, ProgramMeasurer, intel_cpu, intel_cpu_avx512
from repro.search import (
    BeamSearchPolicy,
    LibraryBaseline,
    expert_schedule,
    limited_space_policy,
    random_search_policy,
)
from repro.search.space import LIMITED_SPACE
from repro.task import SearchTask, TuningOptions

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(256, 256, 256), intel_cpu(), desc="mm256")


def test_random_search_policy_has_no_evolution(task):
    policy = random_search_policy(task, seed=0)
    assert policy.use_evolutionary_search is False
    assert isinstance(policy.cost_model, RandomCostModel)


def test_random_search_policy_runs(task, measurer):
    policy = random_search_policy(task, seed=0, sample_init_population=16)
    inputs, results = policy.continue_search_one_round(8, measurer)
    assert len(inputs) == 8
    assert np.isfinite(policy.best_cost)


def test_limited_space_policy_uses_restricted_space(task):
    policy = limited_space_policy(task, seed=0)
    assert policy.space is LIMITED_SPACE
    assert not any(
        any(step.kind in ("cache_write", "rfactor") for step in sketch.transform_steps)
        for sketch in policy.sketches
    )


def test_beam_search_policy_runs_and_improves_over_naive(task):
    policy = BeamSearchPolicy(task, seed=0, beam_width=6, expansions_per_decision=3)
    measurer = ProgramMeasurer(task.hardware_params, seed=0)
    policy.tune(TuningOptions(num_measure_trials=16, num_measures_per_round=8), measurer)
    naive = CostSimulator(task.hardware_params).estimate(task.compute_dag.init_state())
    assert policy.best_cost < naive


def test_beam_search_does_not_remeasure(task, measurer):
    policy = BeamSearchPolicy(task, seed=0, beam_width=4, expansions_per_decision=2)
    seen = set()
    for _ in range(2):
        inputs, _ = policy.continue_search_one_round(4, measurer)
        for inp in inputs:
            key = repr(inp.state.serialize_steps())
            assert key not in seen
            seen.add(key)


def test_expert_schedule_is_deterministic(task):
    state_a = expert_schedule(task)
    state_b = expert_schedule(task)
    assert repr(state_a.serialize_steps()) == repr(state_b.serialize_steps())


def test_expert_schedule_is_reasonably_fast(task):
    sim = CostSimulator(task.hardware_params)
    expert = sim.estimate(expert_schedule(task))
    naive = sim.estimate(task.compute_dag.init_state())
    assert expert < naive / 10


def test_library_baseline_runs(task):
    lib = LibraryBaseline(task, name="mkl-dnn-like")
    cost = lib.run()
    assert np.isfinite(cost) and cost > 0
    assert lib.best_state is not None
    assert lib.best_throughput() > 0


def test_library_baseline_with_avx512_is_faster(task):
    base = LibraryBaseline(task)
    base.run()
    avx = LibraryBaseline(task, hardware=intel_cpu_avx512())
    avx.run()
    assert avx.best_cost <= base.best_cost


@pytest.mark.slow
def test_ansor_matches_or_beats_limited_space(task):
    """Key qualitative claim of §7.1: given enough trials, the full space
    finds programs at least as good as the template-like restricted space.
    (The decisive comparison with the paper's 1000-trial budget lives in the
    benchmark harness; this test uses a small budget and a small tolerance.)
    """
    from repro.search import SketchPolicy

    budget = TuningOptions(num_measure_trials=80, num_measures_per_round=16)
    ansor = SketchPolicy(task, seed=1, population_size=32, num_generations=3, sample_init_population=32)
    ansor.tune(budget, ProgramMeasurer(task.hardware_params, seed=1))
    limited = limited_space_policy(
        task, seed=1, population_size=32, num_generations=3, sample_init_population=32
    )
    limited.tune(budget, ProgramMeasurer(task.hardware_params, seed=1))
    assert ansor.best_cost <= limited.best_cost * 1.2
