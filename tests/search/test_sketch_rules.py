"""Tests for the derivation rules of Table 1 and sketch generation (§4.1)."""

import pytest

from repro import te
from repro.search import (
    FULL_SPACE,
    LIMITED_SPACE,
    RuleAddCacheStage,
    RuleAddRfactor,
    RuleAlwaysInline,
    RuleMultiLevelTiling,
    RuleMultiLevelTilingWithFusion,
    RuleSkip,
    SketchContext,
    default_sketch_rules,
    generate_sketches,
    register_sketch_rule,
    registered_sketch_rules,
)
from repro.search.sketch_rules import SketchRule, fusion_level_index, multi_level_tiling, working_stage_name
from repro.task import SearchTask
from repro.hardware import intel_cpu
from repro.te.dag import ComputeDAG

from ..conftest import make_matmul_dag, make_matmul_relu_dag, make_norm_dag


@pytest.fixture
def relu_task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu())


@pytest.fixture
def ctx(relu_task):
    return SketchContext(dag=relu_task.compute_dag, options=FULL_SPACE)


def _node_index(dag, name):
    return [op.name for op in dag.ops].index(name) + 1


# ---------------------------------------------------------------------------
# Individual rule conditions (Table 1)
# ---------------------------------------------------------------------------


def test_rule1_skip_applies_to_non_inlinable_nodes(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    i_c = _node_index(relu_task.compute_dag, "C")
    assert RuleSkip().condition(state, i_c, ctx)


def test_rule1_and_rule2_are_mutually_exclusive(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    for node_index in range(1, len(relu_task.compute_dag.ops) + 1):
        skip = RuleSkip().condition(state, node_index, ctx)
        inline = RuleAlwaysInline().condition(state, node_index, ctx)
        assert skip != inline


def test_rule2_does_not_inline_output_node(ctx, relu_task):
    # D (relu) is elementwise but it is the DAG output -> not inlinable.
    state = relu_task.compute_dag.init_state()
    i_d = _node_index(relu_task.compute_dag, "D")
    assert not RuleAlwaysInline().condition(state, i_d, ctx)


def test_rule2_inlines_intermediate_elementwise():
    A = te.placeholder((32, 32), name="A")
    B = te.placeholder((32, 32), name="B")
    k = te.reduce_axis(32, "k")
    C = te.compute((32, 32), lambda i, j: te.sum_expr(A[i, k] * B[k, j], [k]), name="C")
    bias = te.compute((32, 32), lambda i, j: C[i, j] + 1.0, name="bias")
    relu = te.compute((32, 32), lambda i, j: te.Max(bias[i, j], te.const(0.0)), name="relu")
    dag = ComputeDAG([relu])
    task = SearchTask(dag, intel_cpu())
    ctx = SketchContext(dag=dag)
    state = dag.init_state()
    assert RuleAlwaysInline().condition(state, _node_index(dag, "bias"), ctx)
    new_state, new_index = RuleAlwaysInline().apply(state, _node_index(dag, "bias"), ctx)[0]
    assert new_state.stage("bias").is_inlined()
    assert new_index == _node_index(dag, "bias") - 1


def test_rule3_condition_data_reuse(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    assert RuleMultiLevelTiling().condition(state, _node_index(relu_task.compute_dag, "C"), ctx)
    assert not RuleMultiLevelTiling().condition(state, _node_index(relu_task.compute_dag, "D"), ctx)


def test_rule4_condition_requires_fusible_consumer(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    assert RuleMultiLevelTilingWithFusion().condition(
        state, _node_index(relu_task.compute_dag, "C"), ctx
    )


def test_rule4_application_tiles_and_fuses(ctx, relu_task):
    dag = relu_task.compute_dag
    state = dag.init_state()
    i_c = _node_index(dag, "C")
    (new_state, new_index), = RuleMultiLevelTilingWithFusion().apply(state, i_c, ctx)
    assert new_index == i_c - 1
    # SSRSRS: 2 spatial axes x 4 + 1 reduction x 2 = 10 loops
    assert len(new_state.stage("C").iters) == 10
    loc = new_state.stage("D").compute_location
    assert loc.kind == "at" and loc.target_stage == "C"
    assert loc.target_iter == fusion_level_index(2)


def test_rule5_condition_only_without_fusible_consumer():
    dag = make_matmul_dag()  # output matmul, no consumer
    ctx = SketchContext(dag=dag)
    state = dag.init_state()
    i_c = _node_index(dag, "C")
    assert RuleAddCacheStage().condition(state, i_c, ctx)
    (new_state, new_index), = RuleAddCacheStage().apply(state, i_c, ctx)
    assert new_index == i_c  # the working node index does not decrease
    assert new_state.has_stage("C.cache")
    # After adding the cache stage, rule 4 becomes applicable (the copy stage
    # is now a fusible consumer).
    assert RuleMultiLevelTilingWithFusion().condition(new_state, i_c, ctx)


def test_rule5_not_applicable_when_fusible_consumer_exists(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    assert not RuleAddCacheStage().condition(state, _node_index(relu_task.compute_dag, "C"), ctx)


def test_rule6_condition_and_application(norm_dag):
    ctx = SketchContext(dag=norm_dag)
    state = norm_dag.init_state()
    i_s = _node_index(norm_dag, "S")
    assert RuleAddRfactor().condition(state, i_s, ctx)
    (new_state, new_index), = RuleAddRfactor().apply(state, i_s, ctx)
    assert new_state.has_stage("S.rf")
    assert new_index == i_s - 1


def test_rule6_not_applicable_to_large_spatial(ctx, relu_task):
    state = relu_task.compute_dag.init_state()
    assert not RuleAddRfactor().condition(state, _node_index(relu_task.compute_dag, "C"), ctx)


def test_rules_respect_space_options(relu_task):
    ctx = SketchContext(dag=relu_task.compute_dag, options=LIMITED_SPACE)
    state = relu_task.compute_dag.init_state()
    i_c = _node_index(relu_task.compute_dag, "C")
    assert not RuleAddCacheStage().condition(state, i_c, ctx)
    assert not RuleAddRfactor().condition(state, i_c, ctx)


# ---------------------------------------------------------------------------
# multi_level_tiling helper
# ---------------------------------------------------------------------------


def test_multi_level_tiling_structure(relu_task):
    state = relu_task.compute_dag.init_state()
    multi_level_tiling(state, "C", spatial_levels=4, reduction_levels=2)
    names = [it.name for it in state.stage("C").iters]
    # SSRSRS ordering: i.0 j.0 i.1 j.1 rk.0 i.2 j.2 rk.1 i.3 j.3
    assert names == [
        "C_i.0", "C_j.0", "C_i.1", "C_j.1", "rk.0", "C_i.2", "C_j.2", "rk.1", "C_i.3", "C_j.3",
    ]
    kinds = [it.kind for it in state.stage("C").iters]
    assert kinds.count("reduce") == 2


def test_multi_level_tiling_is_placeholder(relu_task):
    state = relu_task.compute_dag.init_state()
    multi_level_tiling(state, "C")
    assert not state.is_concrete()
    # iteration space is preserved when placeholders default to 1
    assert state.stage("C").iteration_count() == 64 ** 3


def test_working_stage_name_prefers_cache(relu_task):
    state = relu_task.compute_dag.init_state()
    assert working_stage_name(state, "C") == "C"
    state.cache_write("C")
    assert working_stage_name(state, "C") == "C.cache"


# ---------------------------------------------------------------------------
# User defined rules
# ---------------------------------------------------------------------------


def test_user_rule_registration_and_use(relu_task):
    class MarkerRule(SketchRule):
        name = "marker"
        applied = 0

        def condition(self, state, node_index, ctx):
            op = ctx.op_at(node_index)
            return op.name == "C"

        def apply(self, state, node_index, ctx):
            MarkerRule.applied += 1
            new_state = state.copy()
            new_state.pragma("C", "auto_unroll_max_step", 16)
            return [(new_state, node_index - 1)]

    rule = MarkerRule()
    register_sketch_rule(rule)
    try:
        assert rule in registered_sketch_rules()
        assert rule in default_sketch_rules()
        sketches = generate_sketches(relu_task)
        assert MarkerRule.applied > 0
        assert any(
            any(s.kind == "pragma" for s in sketch.transform_steps) for sketch in sketches
        )
    finally:
        registered_sketch_rules().clear()
        from repro.search import sketch_rules as sr

        sr._USER_RULES.clear()
