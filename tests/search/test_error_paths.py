"""Error paths through the search stack: build errors, run timeouts and
transient faults must not corrupt the search, the cost model, or the
scheduler (satellite coverage for the builder/runner pipeline)."""

import math

import numpy as np
import pytest

from repro.cost_model import LearnedCostModel
from repro.hardware import (
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    RandomFaults,
    intel_cpu,
)
from repro.scheduler import TaskScheduler
from repro.search import EvolutionarySearch, SketchPolicy, generate_sketches, sample_initial_population
from repro.task import SearchTask

from ..conftest import make_matmul_dag, make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="mm+relu")


def _faulty_pipeline(hardware=None, **fault_kwargs):
    return MeasurePipeline(
        hardware or intel_cpu(), fault_model=RandomFaults(**fault_kwargs), seed=0
    )


# ---------------------------------------------------------------------------
# Cost model: error labels never enter the training set
# ---------------------------------------------------------------------------


def test_cost_model_ignores_error_results(task, rng):
    states = sample_initial_population(task, generate_sketches(task), 6, rng)
    inputs = [MeasureInput(task, s) for s in states]
    results = _faulty_pipeline(build_error_prob=1.0, seed=1).measure(inputs)
    assert all(not r.valid for r in results)
    model = LearnedCostModel(seed=0)
    model.update(inputs, results)
    assert model.num_samples == 0
    assert not model.is_trained


def test_cost_model_trains_only_on_valid_subset(task, rng):
    states = sample_initial_population(task, generate_sketches(task), 10, rng)
    inputs = [MeasureInput(task, s) for s in states]
    results = _faulty_pipeline(build_error_prob=0.5, seed=4).measure(inputs)
    n_valid = sum(1 for r in results if r.valid)
    assert 0 < n_valid < len(results)  # the seed gives a mixed batch
    model = LearnedCostModel(seed=0)
    model.update(inputs, results)
    assert model.num_samples == n_valid


# ---------------------------------------------------------------------------
# SketchPolicy / evolutionary search under faults
# ---------------------------------------------------------------------------


def test_sketch_policy_survives_all_errors(task):
    """With every build failing, the search keeps going: trials are consumed,
    nothing becomes a best program, and nothing is retrained."""
    policy = SketchPolicy(task, num_generations=1, sample_init_population=16, seed=0)
    measurer = _faulty_pipeline(build_error_prob=1.0, seed=1)
    inputs, results = policy.continue_search_one_round(6, measurer)
    assert len(inputs) == 6
    assert all(r.error_kind == MeasureErrorNo.BUILD_ERROR for r in results)
    assert policy.best_state is None
    assert policy.best_cost == float("inf")
    assert policy.num_trials == 6
    assert not policy._best_measured  # invalid programs never seed evolution
    assert not policy.cost_model.is_trained


def test_sketch_policy_skips_invalid_best_tracking(task):
    """A mixed batch: only valid results update the best program, and the
    measured-key set still records the failures (no pointless re-measuring)."""
    policy = SketchPolicy(task, num_generations=1, sample_init_population=16, seed=0)
    measurer = _faulty_pipeline(run_timeout_prob=0.5, seed=3)
    inputs, results = policy.continue_search_one_round(8, measurer)
    invalid = [r for r in results if not r.valid]
    valid = [r for r in results if r.valid]
    assert invalid and valid  # the seed gives a mixed batch
    assert policy.best_state is not None
    assert policy.best_cost == pytest.approx(min(r.min_cost for r in valid))
    assert len(policy._measured_keys) == len(inputs)


def test_evolution_continues_after_faulty_round(task):
    """Transient faults in round one must not poison later rounds: the search
    still finds measurable programs afterwards."""
    policy = SketchPolicy(task, num_generations=1, sample_init_population=16, seed=0)
    measurer = _faulty_pipeline(run_error_prob=0.6, seed=5)
    for _ in range(3):
        policy.continue_search_one_round(6, measurer)
    assert policy.num_trials == 18
    assert policy.best_state is not None
    assert math.isfinite(policy.best_cost)


# ---------------------------------------------------------------------------
# TaskScheduler under faults and heterogeneous hardware
# ---------------------------------------------------------------------------


def test_scheduler_survives_faulty_measurement():
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="a"),
        SearchTask(make_matmul_dag(64, 64, 64), intel_cpu(), desc="b"),
    ]
    scheduler = TaskScheduler(
        tasks,
        policy_factory=lambda t, m, s: SketchPolicy(
            t, cost_model=m, num_generations=1, sample_init_population=8, seed=s
        ),
        seed=0,
    )
    measurer = _faulty_pipeline(build_error_prob=0.3, run_timeout_prob=0.2, seed=2)
    best = scheduler.tune(num_measure_trials=16, num_measures_per_round=4, measurer=measurer)
    assert scheduler.total_trials >= 16
    assert measurer.error_count > 0
    assert scheduler.measure_error_count() == measurer.error_count
    # Despite the faults both tasks found at least one valid program.
    assert all(math.isfinite(c) for c in best)
