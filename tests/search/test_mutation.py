"""Tests for the evolution operators: mutations and crossover (§5.1)."""

import numpy as np
import pytest

from repro.hardware import intel_cpu
from repro.ir.steps import PragmaStep, SplitStep
from repro.search import (
    generate_sketches,
    mutate_auto_unroll,
    mutate_compute_location,
    mutate_parallel_degree,
    mutate_tile_size,
    node_based_crossover,
    random_mutation,
    sample_complete_program,
)
from repro.task import SearchTask

from ..conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu())


@pytest.fixture
def sampled(task, rng):
    sketches = generate_sketches(task)
    return [sample_complete_program(task, sketches, rng) for _ in range(8)]


def _split_products(state):
    products = []
    for step in state.transform_steps:
        if isinstance(step, SplitStep):
            prod = 1
            for length in step.concrete_lengths():
                prod *= length
            products.append(prod)
    return products


def test_tile_size_mutation_produces_valid_program(sampled, rng):
    for parent in sampled:
        child = mutate_tile_size(parent, rng)
        if child is None:
            continue
        assert child.is_concrete()
        # The iteration space of the tiled stage is unchanged.
        name = "C.cache" if child.has_stage("C.cache") else "C"
        assert child.stage(name).iteration_count() == parent.stage(name).iteration_count()
        return
    pytest.fail("tile size mutation never succeeded")


def test_tile_size_mutation_changes_some_split(sampled, rng):
    changed = False
    for parent in sampled:
        for _ in range(5):
            child = mutate_tile_size(parent, rng)
            if child is None:
                continue
            if _split_products(child) == _split_products(parent):
                # products must be preserved...
                parent_lengths = [s.lengths for s in parent.transform_steps if isinstance(s, SplitStep)]
                child_lengths = [s.lengths for s in child.transform_steps if isinstance(s, SplitStep)]
                if parent_lengths != child_lengths:
                    changed = True
    assert changed


def test_tile_size_mutation_none_without_splits(task, rng):
    state = task.compute_dag.init_state()
    assert mutate_tile_size(state, rng) is None


def test_auto_unroll_mutation_changes_pragma(sampled, rng):
    parent = None
    for candidate in sampled:
        if any(isinstance(s, PragmaStep) for s in candidate.transform_steps):
            parent = candidate
            break
    if parent is None:
        pytest.skip("no sampled program carried an unroll pragma")
    child = mutate_auto_unroll(parent, rng)
    assert child is not None
    parent_value = [s.value for s in parent.transform_steps if isinstance(s, PragmaStep)]
    child_value = [s.value for s in child.transform_steps if isinstance(s, PragmaStep)]
    assert parent_value != child_value


def test_auto_unroll_mutation_none_without_pragma(task, rng):
    state = task.compute_dag.init_state()
    assert mutate_auto_unroll(state, rng) is None


def test_parallel_degree_mutation(sampled, rng):
    produced = 0
    for parent in sampled:
        for _ in range(4):
            child = mutate_parallel_degree(parent, rng)
            if child is not None:
                produced += 1
                assert child.is_concrete()
    # at least some attempts must succeed across the sampled programs
    assert produced > 0


def test_compute_location_mutation(sampled, rng):
    produced = 0
    for parent in sampled:
        child = mutate_compute_location(parent, rng)
        if child is not None:
            produced += 1
    # programs without compute_at steps legitimately return None
    assert produced >= 0


def test_random_mutation_returns_valid_or_none(sampled, rng):
    successes = 0
    for parent in sampled:
        child = random_mutation(parent, rng)
        if child is not None:
            successes += 1
            assert child.is_concrete()
    assert successes >= len(sampled) // 2


def test_crossover_combines_parents(task, sampled, rng):
    parent_a, parent_b = sampled[0], sampled[1]
    scores_a = {"C": 1.0, "D": 0.0}
    scores_b = {"C": 0.0, "D": 1.0}
    child = node_based_crossover(parent_a, parent_b, scores_a, scores_b, rng)
    if child is None:
        pytest.skip("crossover produced an invalid combination for these parents")
    assert child.is_concrete()
    assert child.dag is parent_a.dag


def test_crossover_prefers_higher_scoring_nodes(task, sampled, rng):
    parent_a, parent_b = sampled[0], sampled[2]
    # Give parent_a a much higher total score: it becomes the primary parent.
    child = node_based_crossover(parent_a, parent_b, {"C": 10.0, "D": 10.0}, {"C": 0.1, "D": 0.1}, rng)
    if child is None:
        pytest.skip("crossover invalid for these parents")
    # With parent_a dominating every node, at most one node comes from b, so
    # most steps should match parent_a's history length roughly.
    assert abs(len(child.transform_steps) - len(parent_a.transform_steps)) <= max(
        len(parent_b.transform_steps), 6
    )


def test_crossover_many_random_pairs_mostly_valid(task, sampled, rng):
    valid = 0
    trials = 0
    for i in range(len(sampled)):
        for j in range(i + 1, len(sampled)):
            trials += 1
            child = node_based_crossover(
                sampled[i], sampled[j], {"C": rng.random(), "D": rng.random()},
                {"C": rng.random(), "D": rng.random()}, rng,
            )
            if child is not None:
                valid += 1
    assert trials > 0
    assert valid / trials > 0.3
