"""Unit tests for the measure-callback pipeline."""

import io

import pytest

from repro import (
    EarlyStopper,
    MeasureCallback,
    MeasureEvent,
    ProgressLogger,
    RecordToFile,
    SearchTask,
    StopTuning,
    TuningOptions,
    intel_cpu,
)
from repro.callbacks import fire_round
from repro.hardware import ProgramMeasurer
from repro.scheduler import TaskScheduler
from repro.search import SketchPolicy

from .conftest import make_matmul_dag, make_matmul_relu_dag


def _event(task, policy, num_trials, best_cost):
    return MeasureEvent(
        task=task, policy=policy, inputs=[], results=[],
        num_trials=num_trials, best_cost=best_cost,
    )


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(64, 64, 64), intel_cpu(), desc="mm64")


def test_early_stopper_requires_positive_patience():
    with pytest.raises(ValueError):
        EarlyStopper(0)


def test_early_stopper_tracks_improvement_per_policy(task, intel_hardware):
    # One policy per task, as the task scheduler builds them; identical
    # workloads (same workload_key) must not share a staleness counter.
    other = SearchTask(make_matmul_dag(32, 32, 32), intel_hardware, desc="mm32")
    policy = SketchPolicy(task)
    other_policy = SketchPolicy(other)
    stopper = EarlyStopper(patience=2)

    stopper.on_round(_event(task, policy, 8, 1.0))   # first observation: improves
    stopper.on_round(_event(task, policy, 16, 1.0))  # stale 1
    # a different policy does not reset (or trip) the first one's counter
    stopper.on_round(_event(other, other_policy, 8, 5.0))
    with pytest.raises(StopTuning):
        stopper.on_round(_event(task, policy, 24, 1.0))  # stale 2 -> stop
    # the other policy keeps tuning
    stopper.on_round(_event(other, other_policy, 16, 4.0))


def test_early_stopper_separates_duplicate_workloads(task):
    # Two policies over the SAME task (equal workload keys): each gets its
    # own counter, so one stalling does not exhaust the other.
    stalling, improving = SketchPolicy(task, seed=0), SketchPolicy(task, seed=1)
    stopper = EarlyStopper(patience=1)
    stopper.on_round(_event(task, stalling, 8, 1.0))
    stopper.on_round(_event(task, improving, 8, 2.0))  # worse cost, but its own first round
    stopper.on_round(_event(task, improving, 16, 1.5))  # still improving itself
    with pytest.raises(StopTuning):
        stopper.on_round(_event(task, stalling, 16, 1.0))


def test_early_stopper_min_trials_defers_stop(task):
    policy = SketchPolicy(task)
    stopper = EarlyStopper(patience=1, min_trials=32)
    stopper.on_round(_event(task, policy, 8, 1.0))
    stopper.on_round(_event(task, policy, 16, 1.0))  # stale but below min_trials
    with pytest.raises(StopTuning):
        stopper.on_round(_event(task, policy, 32, 1.0))


def test_fire_round_runs_every_callback_before_reraising(task):
    seen = []

    class Recorder(MeasureCallback):
        def on_round(self, event):
            seen.append(event.num_trials)

    class Stopper(MeasureCallback):
        def on_round(self, event):
            raise StopTuning("stop")

    policy = SketchPolicy(task)
    with pytest.raises(StopTuning):
        # the stopper fires first, but the recorder still sees the round
        fire_round([Stopper(), Recorder()], _event(task, policy, 8, 1.0))
    assert seen == [8]


def test_progress_logger_reports_measure_errors(task):
    from repro.hardware.measurer import MeasureResult

    stream = io.StringIO()
    logger = ProgressLogger(stream=stream)
    policy = SketchPolicy(task)
    event = _event(task, policy, 8, 1.0)
    event.results = [MeasureResult(costs=[], error="ValueError: bad schedule")]
    logger.on_round(event)
    assert "errors=1" in stream.getvalue()


def test_scheduler_marks_early_stopped_tasks_exhausted(intel_hardware):
    tasks = [
        SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a"),
        SearchTask(make_matmul_relu_dag(96, 96, 96), intel_hardware, desc="b"),
    ]
    scheduler = TaskScheduler(tasks, seed=0)
    measurer = ProgramMeasurer(intel_hardware, seed=0)
    # patience 1: each task stops after its first non-improving round
    scheduler.tune(200, num_measures_per_round=8, measurer=measurer,
                   callbacks=[EarlyStopper(patience=1)])
    assert all(scheduler.exhausted)
    assert scheduler.total_trials < 200
    # both tasks still got tuned before stopping
    assert all(a > 0 for a in scheduler.allocations)


def test_scheduler_fires_scheduler_round_hook(intel_hardware):
    rounds = []

    class SchedulerWatcher(MeasureCallback):
        def on_scheduler_round(self, scheduler, record):
            rounds.append((record.selected_task, record.total_trials))

    tasks = [SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a")]
    scheduler = TaskScheduler(tasks, seed=0)
    scheduler.tune(16, num_measures_per_round=8,
                   measurer=ProgramMeasurer(intel_hardware, seed=0),
                   callbacks=[SchedulerWatcher()])
    assert rounds == [(0, 8), (0, 16)]


def test_stop_tuning_from_scheduler_round_hook_stops_gracefully(intel_hardware):
    class GlobalBudget(MeasureCallback):
        def on_scheduler_round(self, scheduler, record):
            if record.total_trials >= 16:
                raise StopTuning("global budget reached")

    tasks = [SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a")]
    scheduler = TaskScheduler(tasks, seed=0)
    best = scheduler.tune(64, num_measures_per_round=8,
                          measurer=ProgramMeasurer(intel_hardware, seed=0),
                          callbacks=[GlobalBudget()])
    # the session ended gracefully with results instead of raising
    assert scheduler.total_trials == 16
    assert len(best) == 1


def test_policy_tune_supports_legacy_two_argument_subclasses(task):
    """Pre-0.2.0 subclasses override continue_search_one_round without the
    callbacks parameter; tune() fires events at the loop level so they keep
    working — including with callbacks, verbose and early stopping."""

    class LegacyPolicy(SketchPolicy):
        def continue_search_one_round(self, num_measures, measurer):
            return super().continue_search_one_round(num_measures, measurer)

    policy = LegacyPolicy(task, seed=0)
    policy.tune(TuningOptions(num_measure_trials=16, num_measures_per_round=8),
                ProgramMeasurer(task.hardware_params, seed=0))
    assert policy.num_trials == 16

    # with callbacks and options-driven early stopping
    rounds = []

    class Watcher(MeasureCallback):
        def on_round(self, event):
            rounds.append(event.num_trials)

    policy2 = LegacyPolicy(task, seed=0)
    policy2.tune(TuningOptions(num_measure_trials=96, num_measures_per_round=8,
                               early_stopping=1),
                 ProgramMeasurer(task.hardware_params, seed=0),
                 callbacks=[Watcher()])
    assert policy2.num_trials < 96  # early stopping honored
    assert rounds  # the watcher observed every round

    # and driven by the task scheduler with callbacks
    scheduler = TaskScheduler([task], policy_factory=lambda t, m, s: LegacyPolicy(t, cost_model=m, seed=s), seed=0)
    scheduler.tune(16, num_measures_per_round=8,
                   measurer=ProgramMeasurer(task.hardware_params, seed=0),
                   callbacks=[Watcher()])
    assert scheduler.total_trials == 16


def test_scheduler_round_hook_runs_all_callbacks_before_stopping(intel_hardware):
    """A StopTuning from one callback's on_scheduler_round must not hide the
    final record from callbacks ordered after it."""
    seen = []

    class BudgetStopper(MeasureCallback):
        def on_scheduler_round(self, scheduler, record):
            if record.total_trials >= 8:
                raise StopTuning("budget")

    class Recorder(MeasureCallback):
        def on_scheduler_round(self, scheduler, record):
            seen.append(record.total_trials)

    tasks = [SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a")]
    scheduler = TaskScheduler(tasks, seed=0)
    scheduler.tune(64, num_measures_per_round=8,
                   measurer=ProgramMeasurer(intel_hardware, seed=0),
                   callbacks=[BudgetStopper(), Recorder()])
    assert scheduler.total_trials == 8
    assert seen == [8]  # the recorder saw the stopping round


def test_continue_search_one_round_fires_callbacks_directly(task, measurer):
    """The callbacks parameter of continue_search_one_round serves external
    drivers that bypass tune(); events must fire from there too."""
    seen = []

    class Watcher(MeasureCallback):
        def on_round(self, event):
            seen.append((event.num_trials, len(event.inputs)))

    policy = SketchPolicy(task, seed=0)
    inputs, _ = policy.continue_search_one_round(8, measurer, [Watcher()])
    assert seen == [(len(inputs), len(inputs))]


def test_early_stopper_resets_between_sessions(task):
    stopper = EarlyStopper(patience=1)
    policy = SketchPolicy(task, seed=0)
    stopper.on_tuning_start(policy)
    stopper.on_round(_event(task, policy, 8, 1.0))
    with pytest.raises(StopTuning):
        stopper.on_round(_event(task, policy, 16, 1.0))
    # a new session (possibly with a recycled policy id) starts clean
    stopper.on_tuning_start(policy)
    stopper.on_round(_event(task, policy, 8, 2.0))  # no inherited staleness


def test_policy_tune_injects_early_stopper_from_options(task):
    policy = SketchPolicy(task, seed=0)
    policy.tune(TuningOptions(num_measure_trials=96, num_measures_per_round=8,
                              early_stopping=1),
                ProgramMeasurer(task.hardware_params, seed=0))
    assert policy.num_trials < 96


# ---------------------------------------------------------------------------
# Streaming on_result events
# ---------------------------------------------------------------------------


def test_sync_rounds_fire_on_result_before_on_round(task, measurer):
    order = []

    class Watcher(MeasureCallback):
        def on_result(self, event):
            order.append(("result", id(event.result)))

        def on_round(self, event):
            order.append(("round", [id(r) for r in event.results]))

    policy = SketchPolicy(task, seed=0)
    policy.tune(TuningOptions(num_measure_trials=8, num_measures_per_round=8),
                measurer, [Watcher()])
    kinds = [kind for kind, _ in order]
    assert kinds == ["result"] * 8 + ["round"]
    # the streamed results are exactly the round's results, in order
    streamed = [payload for kind, payload in order if kind == "result"]
    assert streamed == order[-1][1]


def test_record_to_file_streams_without_duplicates(tmp_path, task, measurer):
    """RecordToFile appends from on_result; the round sweep must not write
    the same results again (byte-identical to the historical per-round log)."""
    from repro import Tuner
    from repro.records import load_records

    log = tmp_path / "stream.json"
    Tuner(task, options=TuningOptions(num_measure_trials=16, num_measures_per_round=8),
          callbacks=[RecordToFile(log)]).tune()
    records = load_records(log, strict=True)
    assert len(records) == 16


def test_record_to_file_on_round_alone_still_writes(tmp_path, task):
    """Direct on_round use (external drivers, old tests) keeps working: with
    no streamed results the round writes everything."""
    from repro.hardware import MeasureInput, MeasurePipeline
    from repro.records import load_records
    from repro.search import generate_sketches, sample_initial_population
    import numpy as np

    pipeline = MeasurePipeline(task.hardware_params, seed=0)
    states = sample_initial_population(
        task, generate_sketches(task), 4, np.random.default_rng(0))
    inputs = [MeasureInput(task, s) for s in states]
    results = pipeline.measure(inputs)
    policy = SketchPolicy(task)
    log = tmp_path / "round.json"
    cb = RecordToFile(log)
    event = _event(task, policy, 4, 1.0)
    event.inputs, event.results = inputs, results
    cb.on_round(event)
    assert len(load_records(log, strict=True)) == 4


def test_early_stopper_target_cost_stops_mid_session(task):
    from repro.hardware import MeasurePipeline

    policy = SketchPolicy(task, seed=0)
    measurer = MeasurePipeline(task.hardware_params, seed=0)
    stopper = EarlyStopper(patience=100, target_cost=1.0)  # any valid result hits 1s
    policy.tune(TuningOptions(num_measure_trials=64, num_measures_per_round=8),
                measurer, [stopper])
    assert policy.num_trials == 8  # first round reached the target


def test_early_stopper_target_cost_validation():
    with pytest.raises(ValueError):
        EarlyStopper(patience=1, target_cost=0.0)


def test_progress_logger_prints_device_stats_at_session_end(task):
    """Satellite: the per-device runs/errors/busy breakdown of an rpc runner
    is printed when the session ends."""
    from repro.hardware import MeasurePipeline, RpcRunner

    stream = io.StringIO()
    runner = RpcRunner(task.hardware_params, devices=["board0", "board1"], seed=0)
    measurer = MeasurePipeline(task.hardware_params, runner=runner, seed=0)
    policy = SketchPolicy(task, seed=0)
    policy.tune(TuningOptions(num_measure_trials=8, num_measures_per_round=8),
                measurer, [ProgressLogger(stream=stream)])
    out = stream.getvalue()
    assert "device stats" in out
    assert "board0" in out and "board1" in out
    assert "runs=" in out and "errors=" in out and "busy=" in out


def test_progress_logger_device_stats_from_scheduler_measurers(intel_hardware):
    from repro.hardware import MeasurePipeline, RpcRunner

    stream = io.StringIO()
    tasks = [SearchTask(make_matmul_relu_dag(64, 64, 64), intel_hardware, desc="a")]
    runner = RpcRunner(intel_hardware, devices=2, seed=0)
    measurer = MeasurePipeline(intel_hardware, runner=runner, seed=0)
    scheduler = TaskScheduler(tasks, seed=0)
    scheduler.tune(8, num_measures_per_round=8, measurer=measurer,
                   callbacks=[ProgressLogger(stream=stream, log_scheduler_rounds=False)])
    out = stream.getvalue()
    assert "device stats" in out
    assert "dev0" in out and "dev1" in out


def test_progress_logger_device_stats_can_be_disabled(task):
    from repro.hardware import MeasurePipeline, RpcRunner

    stream = io.StringIO()
    runner = RpcRunner(task.hardware_params, devices=2, seed=0)
    measurer = MeasurePipeline(task.hardware_params, runner=runner, seed=0)
    policy = SketchPolicy(task, seed=0)
    policy.tune(TuningOptions(num_measure_trials=8, num_measures_per_round=8),
                measurer,
                [ProgressLogger(stream=stream, log_device_stats=False)])
    assert "device stats" not in stream.getvalue()
