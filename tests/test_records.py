"""Tests for tuning-log records."""

import json
import warnings

import numpy as np
import pytest

from repro import apply_history_best, load_records, save_records
from repro.hardware import (
    CostSimulator,
    MeasureErrorNo,
    MeasureInput,
    MeasurePipeline,
    ProgramMeasurer,
    RandomFaults,
    intel_cpu,
)
from repro.records import RecordLogWarning, TuningRecord, best_record
from repro.search import generate_sketches, sample_initial_population
from repro.task import SearchTask

from .conftest import make_matmul_relu_dag


@pytest.fixture
def task():
    return SearchTask(make_matmul_relu_dag(), intel_cpu(), desc="mm64")


@pytest.fixture
def measured(task, rng, measurer):
    sketches = generate_sketches(task)
    states = sample_initial_population(task, sketches, 6, rng)
    inputs = [MeasureInput(task, s) for s in states]
    results = measurer.measure(inputs)
    return inputs, results


def test_round_trip_through_file(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    records = load_records(log)
    assert len(records) == len(inputs)
    assert all(r.workload_key == task.workload_key for r in records)
    assert all(r.valid for r in records)


def test_append_mode(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs[:3], results[:3])
    save_records(log, inputs[3:], results[3:])
    assert len(load_records(log)) == len(inputs)


def test_overwrite_mode(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    save_records(log, inputs[:2], results[:2], append=False)
    assert len(load_records(log)) == 2


def test_corrupt_lines_are_skipped_with_warning(tmp_path, task, measured):
    """Malformed lines are tolerated but surfaced: counted and warned about
    once per file, instead of raising mid-file or vanishing silently."""
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    with open(log, "a") as f:
        f.write("this is not json\n")
        f.write('{"missing": "fields"}\n')
    with pytest.warns(RecordLogWarning, match="2 malformed"):
        records = load_records(log)
    assert len(records) == len(inputs)


def test_clean_log_loads_without_warning(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RecordLogWarning)
        assert len(load_records(log)) == len(inputs)


def test_strict_mode_raises_on_corrupt_line(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    with open(log, "a") as f:
        f.write("garbage\n")
    with pytest.raises(json.JSONDecodeError):
        load_records(log, strict=True)


def test_legacy_lines_without_error_no_load(tmp_path, task, measured):
    """Pre-taxonomy log lines (no error_no / elapsed_sec fields) still load;
    the kind is derived from the error string."""
    inputs, results = measured
    legacy_ok = {
        "workload_key": task.workload_key,
        "target": task.hardware_params.name,
        "steps": inputs[0].state.serialize_steps(),
        "costs": [0.5],
        "error": None,
        "timestamp": 1.0,
    }
    legacy_err = dict(legacy_ok, costs=[], error="ValueError: bad")
    log = tmp_path / "legacy.json"
    log.write_text(json.dumps(legacy_ok) + "\n" + json.dumps(legacy_err) + "\n")
    records = load_records(log)
    assert len(records) == 2
    assert records[0].valid
    assert records[0].error_kind == MeasureErrorNo.NO_ERROR
    assert not records[1].valid
    assert records[1].error_kind == MeasureErrorNo.UNKNOWN_ERROR


def test_error_kind_and_elapsed_round_trip(tmp_path, task, measured):
    """error_no and elapsed_sec survive the JSON round trip, so failed
    trials are resumable and plottable."""
    inputs, _ = measured
    faulty = MeasurePipeline(
        task.hardware_params, fault_model=RandomFaults(build_error_prob=0.5, seed=4), seed=0
    )
    results = faulty.measure(inputs)
    assert any(not r.valid for r in results) and any(r.valid for r in results)
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    records = load_records(log)
    for rec, res in zip(records, results):
        assert rec.error_no == int(res.error_no)
        assert rec.error_kind == res.error_kind
        assert rec.elapsed_sec == pytest.approx(res.elapsed_sec)
        assert rec.valid == res.valid


def test_retry_count_round_trips(tmp_path, task, measured):
    """A transient-fault session's retry counts survive the log round trip
    (one line per trial, never one per attempt)."""
    inputs, _ = measured
    retried = MeasurePipeline(
        task.hardware_params,
        fault_model=RandomFaults(run_error_prob=0.6, seed=3),
        seed=0,
        n_retry=5,
    )
    results = retried.measure(inputs)
    assert sum(r.retry_count for r in results) > 0
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    records = load_records(log)
    assert len(records) == len(inputs)  # one line per trial, retries merged
    for rec, res in zip(records, results):
        assert rec.retry_count == res.retry_count


def test_legacy_lines_without_retry_count_default_to_zero(tmp_path, task, measured):
    inputs, _ = measured
    line = {
        "workload_key": task.workload_key,
        "target": task.hardware_params.name,
        "steps": inputs[0].state.serialize_steps(),
        "costs": [0.5],
        "error": None,
        "error_no": 0,
        "elapsed_sec": 0.1,
        "timestamp": 1.0,
    }
    log = tmp_path / "legacy.json"
    log.write_text(json.dumps(line) + "\n")
    (record,) = load_records(log)
    assert record.retry_count == 0


def test_best_record_and_apply_history_best(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    best = best_record(log, task.workload_key)
    assert best is not None
    expected_cost = min(r.min_cost for r in results if r.valid)
    assert best.best_cost == pytest.approx(expected_cost)

    state = apply_history_best(task, log)
    assert state is not None
    # Re-estimating the rebuilt program gives (noise-free) a cost close to
    # the logged one.
    simulated = CostSimulator(task.hardware_params).estimate(state)
    assert simulated == pytest.approx(expected_cost, rel=0.2)


def test_best_record_unknown_workload(tmp_path, task, measured):
    inputs, results = measured
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    assert best_record(log, "unknown") is None
    assert apply_history_best(SearchTask(make_matmul_relu_dag(32, 32, 32), intel_cpu()), log) is None


def test_record_to_state_reproduces_program(task, measured):
    inputs, results = measured
    record = TuningRecord.from_measurement(inputs[0], results[0])
    rebuilt = record.to_state(task)
    assert rebuilt.print_program() == inputs[0].state.print_program()


def test_invalid_measurement_recorded_as_error(tmp_path, task):
    state = task.compute_dag.init_state()
    state.split("C", 0, [None])
    measurer = ProgramMeasurer(task.hardware_params)
    inputs = [MeasureInput(task, state)]
    results = measurer.measure(inputs)
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    records = load_records(log)
    assert not records[0].valid
    assert records[0].best_cost == float("inf")


def test_retry_and_error_no_round_trip_strict(tmp_path, task, measured):
    """Satellite regression: retry_count and error_no of a fault-heavy
    session survive the log round trip byte-faithfully under strict=True
    (no line falls back to the lenient skip path)."""
    inputs, _ = measured
    pipeline = MeasurePipeline(
        task.hardware_params,
        fault_model=RandomFaults(run_error_prob=0.7, run_timeout_prob=0.1, seed=9),
        seed=0,
        n_retry=2,
    )
    results = pipeline.measure(inputs)
    assert sum(r.retry_count for r in results) > 0
    assert any(not r.valid for r in results)  # some faults survive the retries
    log = tmp_path / "tuning.json"
    save_records(log, inputs, results)
    records = load_records(log, strict=True)
    assert len(records) == len(inputs)
    for rec, res in zip(records, results):
        assert rec.retry_count == res.retry_count
        assert rec.error_no == int(res.error_no)
        assert rec.error_kind == res.error_kind
        assert rec.valid == res.valid
    # and a second generation (re-serialize the parsed records) is stable
    second = [TuningRecord.from_json(r.to_json()) for r in records]
    assert [(r.retry_count, r.error_no, r.costs) for r in second] == [
        (r.retry_count, r.error_no, r.costs) for r in records
    ]
