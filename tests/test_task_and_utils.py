"""Tests for SearchTask, TuningOptions and the small utility helpers."""

import numpy as np
import pytest

from repro.hardware import arm_cpu, intel_cpu
from repro.task import SearchTask, TuningOptions
from repro.utils import Timer, seeded_rng

from .conftest import make_matmul_dag, make_matmul_relu_dag


def test_task_defaults_to_intel_cpu(matmul_dag):
    task = SearchTask(matmul_dag)
    assert task.hardware_params.name == intel_cpu().name


def test_task_workload_key_includes_target(matmul_dag):
    cpu_task = SearchTask(matmul_dag, intel_cpu())
    arm_task = SearchTask(matmul_dag, arm_cpu())
    assert cpu_task.workload_key != arm_task.workload_key
    assert cpu_task.workload_key.endswith(intel_cpu().name)


def test_same_computation_same_key():
    a = SearchTask(make_matmul_dag(32, 32, 32), intel_cpu())
    b = SearchTask(make_matmul_dag(32, 32, 32), intel_cpu())
    assert a.workload_key == b.workload_key


def test_task_flop_count_delegates(matmul_relu_dag):
    task = SearchTask(matmul_relu_dag, intel_cpu())
    assert task.flop_count() == matmul_relu_dag.flop_count()


def test_task_desc_and_repr(matmul_dag):
    task = SearchTask(matmul_dag, intel_cpu(), desc="my matmul")
    assert task.desc == "my matmul"
    assert "my matmul" in repr(task)


def test_task_generates_desc_when_missing(matmul_dag):
    task = SearchTask(matmul_dag, intel_cpu())
    assert task.desc


def test_tuning_options_defaults():
    options = TuningOptions()
    assert options.num_measure_trials >= options.num_measures_per_round
    assert options.early_stopping is None


def test_seeded_rng_is_deterministic_per_key():
    a = seeded_rng("task", 1).random(4)
    b = seeded_rng("task", 1).random(4)
    c = seeded_rng("task", 2).random(4)
    np.testing.assert_allclose(a, b)
    assert not np.allclose(a, c)


def test_timer_measures_elapsed_time():
    with Timer() as timer:
        total = sum(range(10000))
    assert total > 0
    assert timer.elapsed >= 0.0


def test_package_exports():
    import repro

    assert repro.__version__
    for name in ("auto_schedule", "SketchPolicy", "TaskScheduler", "SearchTask", "ComputeDAG"):
        assert hasattr(repro, name)
